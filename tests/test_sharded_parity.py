"""Sharded multi-engine <-> vectorized engine parity (the tentpole invariant).

The parallel sharded backend (``ShardedQueueGroup`` + the
``run_regular_sharded``/``run_delete_sharded`` kernels in
``repro.core.parallel``) must be a *bit-identical* drop-in for the
single-engine vectorized path for any engine count and any worker count:
same final states, same per-round ``RoundWork`` vectors (hence identical
modelled cycles/energy), same phase extras, same queue lifetime
statistics. These tests sweep every algorithm × delete policy ×
{static, streaming insert+delete batches} × ``num_engines ∈ {1, 2, 8}``,
mirroring the structure of ``tests/test_vector_parity.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import make_algorithm
from repro.core.config import AcceleratorConfig
from repro.core.engine import GraphPulseEngine
from repro.core.policies import DeletePolicy
from repro.core.streaming import JetStreamEngine
from repro.streams import StreamGenerator

from conftest import make_graph_for

ALGORITHMS = ["sssp", "bfs", "cc", "sswp", "pagerank", "adsorption"]
POLICIES = [DeletePolicy.BASE, DeletePolicy.VAP, DeletePolicy.DAP]
ENGINE_COUNTS = [1, 2, 8]
BACKENDS = ["thread", "process"]


def assert_run_parity(oracle, sharded, context: str = "") -> None:
    """States bit-identical; every work vector and queue stat equal."""
    assert oracle.states.tobytes() == sharded.states.tobytes(), (
        f"{context}: states diverge"
    )
    orows = oracle.metrics.to_rows()
    srows = sharded.metrics.to_rows()
    assert orows == srows, f"{context}: per-round work vectors diverge"
    for op, sp in zip(oracle.metrics.phases, sharded.metrics.phases):
        assert op.name == sp.name, context
        assert op.vertices_reset == sp.vertices_reset, f"{context}: {op.name}"
        assert op.deletes_discarded == sp.deletes_discarded, f"{context}: {op.name}"
        assert op.request_events == sp.request_events, f"{context}: {op.name}"
    assert oracle.queue_stats == sharded.queue_stats, (
        f"{context}: queue lifetime stats diverge"
    )


def run_static_pair(
    name: str,
    num_engines: int,
    config=None,
    n: int = 60,
    m: int = 240,
    seed: int = 7,
    backend: str = "thread",
):
    algorithm = make_algorithm(name, source=0)
    graph = make_graph_for(algorithm, n=n, m=m, seed=seed)
    oracle = GraphPulseEngine(
        make_algorithm(name, source=0), config, engine="vectorized"
    ).compute(graph.snapshot())
    engine = GraphPulseEngine(
        make_algorithm(name, source=0),
        config,
        engine="sharded",
        num_engines=num_engines,
        backend=backend,
    )
    try:
        sharded = engine.compute(graph.snapshot())
    finally:
        engine.close()
    return oracle, sharded


def run_stream_pair(
    name: str,
    policy: DeletePolicy,
    num_engines: int,
    config=None,
    n: int = 50,
    m: int = 200,
    seed: int = 11,
    num_batches: int = 3,
    batch_size: int = 12,
    backend: str = "thread",
    **engine_kwargs,
):
    results = []
    for engine_mode in ("vectorized", "sharded"):
        algorithm = make_algorithm(name, source=0)
        graph = make_graph_for(algorithm, n=n, m=m, seed=seed)
        kwargs = dict(engine_kwargs)
        if engine_mode == "sharded":
            kwargs["num_engines"] = num_engines
            kwargs["backend"] = backend
        engine = JetStreamEngine(
            graph, algorithm, config, policy=policy, engine=engine_mode, **kwargs
        )
        try:
            stream = StreamGenerator(graph, seed=seed + 1)
            runs = [engine.initial_compute()]
            for _ in range(num_batches):
                runs.append(engine.apply_batch(stream.next_batch(batch_size)))
        finally:
            engine.close()
        results.append(runs)
    return results


class TestStaticShardedParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("num_engines", ENGINE_COUNTS)
    @pytest.mark.parametrize("name", ALGORITHMS)
    def test_static_compute(self, name, num_engines, backend):
        oracle, sharded = run_static_pair(name, num_engines, backend=backend)
        assert_run_parity(
            oracle, sharded, f"static/{name}/e{num_engines}/{backend}"
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("name", ["sssp", "pagerank"])
    def test_static_partial_drain(self, name, backend):
        # The scheduler's bounded row window must be computed over the
        # union of every engine's pending rows.
        config = AcceleratorConfig(scheduler_rows_per_round=2)
        oracle, sharded = run_static_pair(name, 8, config, seed=33, backend=backend)
        assert_run_parity(oracle, sharded, f"static-partial/{name}/{backend}")

    def test_serial_workers_identical(self):
        # workers=1 (serial shard execution) is the same computation as the
        # thread pool — determinism cannot depend on scheduling.
        algorithm = make_algorithm("pagerank")
        graph = make_graph_for(algorithm, n=60, m=240, seed=7)
        pooled = GraphPulseEngine(
            make_algorithm("pagerank"), engine="sharded", num_engines=8
        ).compute(graph.snapshot())
        serial = GraphPulseEngine(
            make_algorithm("pagerank"),
            engine="sharded",
            num_engines=8,
            shard_workers=1,
        ).compute(graph.snapshot())
        assert_run_parity(pooled, serial, "static/workers")

    def test_sharded_rejects_forced_queue_slicing(self):
        # Each engine's queue must hold its whole slice resident (§4.7);
        # a queue too small for the graph cannot be sharded.
        config = AcceleratorConfig(queue_bytes=25 * 8)
        with pytest.raises(ValueError):
            run_static_pair("sssp", 8, config, n=100, m=400, seed=21)

    def test_sharded_requires_vector_hooks(self):
        from repro.core.engine import EngineCore

        class NoHooks(type(make_algorithm("sssp"))):
            reduce_ufunc = None

        with pytest.raises(ValueError):
            EngineCore(NoHooks(source=0), engine="sharded")

    def test_bad_engine_count_rejected(self):
        from repro.core.engine import EngineCore

        with pytest.raises(ValueError):
            EngineCore(make_algorithm("sssp"), engine="sharded", num_engines=0)


class TestStreamingShardedParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("num_engines", ENGINE_COUNTS)
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("name", ALGORITHMS)
    def test_streaming(self, name, policy, num_engines, backend):
        oracle_runs, sharded_runs = run_stream_pair(
            name, policy, num_engines, backend=backend
        )
        for index, (oracle, sharded) in enumerate(zip(oracle_runs, sharded_runs)):
            context = (
                f"stream/{name}/{policy.name}/e{num_engines}/{backend}/"
                f"batch{index}"
            )
            assert oracle.impacted == sharded.impacted, (
                f"{context}: impacted diverge"
            )
            assert_run_parity(oracle, sharded, context)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("policy", POLICIES)
    def test_streaming_partial_drain(self, policy, backend):
        config = AcceleratorConfig(scheduler_rows_per_round=2)
        oracle_runs, sharded_runs = run_stream_pair(
            "sssp", policy, 8, config, seed=51, backend=backend
        )
        for index, (oracle, sharded) in enumerate(zip(oracle_runs, sharded_runs)):
            assert oracle.impacted == sharded.impacted
            assert_run_parity(
                oracle,
                sharded,
                f"stream-partial/{policy.name}/{backend}/batch{index}",
            )

    def test_streaming_two_phase_accumulative(self):
        oracle_runs, sharded_runs = run_stream_pair(
            "pagerank",
            DeletePolicy.DAP,
            8,
            n=50,
            m=200,
            seed=61,
            two_phase_accumulative=True,
        )
        for index, (oracle, sharded) in enumerate(zip(oracle_runs, sharded_runs)):
            assert_run_parity(oracle, sharded, f"two-phase/batch{index}")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_streaming_grows_vertices(self, backend):
        # Streams that create brand-new vertices exercise the deterministic
        # partition-growth rule on both the engine plan and the queue group
        # (and, on the process backend, shm state-array reallocation).
        algorithm = make_algorithm("sssp", source=0)
        graph = make_graph_for(algorithm, n=30, m=100, seed=71)
        runs = []
        for engine_mode in ("vectorized", "sharded"):
            g = make_graph_for(algorithm, n=30, m=100, seed=71)
            kwargs = {"backend": backend} if engine_mode == "sharded" else {}
            engine = JetStreamEngine(
                g, make_algorithm("sssp", source=0), engine=engine_mode, **kwargs
            )
            try:
                engine.initial_compute()
                out = []
                next_vertex = g.num_vertices
                for step in range(3):
                    from repro.streams import Edge, UpdateBatch

                    insertions = [
                        Edge(step, next_vertex, 1.0),
                        Edge(next_vertex, next_vertex + 1, 2.0),
                    ]
                    next_vertex += 2
                    out.append(
                        engine.apply_batch(UpdateBatch(insertions=insertions))
                    )
            finally:
                engine.close()
            runs.append(out)
        for index, (oracle, sharded) in enumerate(zip(*runs)):
            assert oracle.impacted == sharded.impacted
            assert_run_parity(oracle, sharded, f"grow/{backend}/batch{index}")


class TestShardedMetrics:
    def test_per_engine_rounds_recorded(self):
        algorithm = make_algorithm("sssp", source=0)
        graph = make_graph_for(algorithm, n=60, m=240, seed=7)
        engine = GraphPulseEngine(
            make_algorithm("sssp", source=0), engine="sharded", num_engines=4
        )
        result = engine.compute(graph.snapshot())
        phase = result.metrics.phases[0]
        assert phase.shard_rounds, "per-shard work vectors missing"
        assert all(len(round_) == 4 for round_ in phase.shard_rounds)
        per_engine = phase.per_engine_totals()
        assert len(per_engine) == 4
        # Per-engine processed events partition the global count.
        merged = sum(w.events_processed for w in per_engine)
        assert merged == phase.events_processed

    def test_engine_utilization_and_noc_summary(self):
        algorithm = make_algorithm("pagerank")
        graph = make_graph_for(algorithm, n=80, m=400, seed=13)
        engine = GraphPulseEngine(
            make_algorithm("pagerank"), engine="sharded", num_engines=8
        )
        result = engine.compute(graph.snapshot())
        util = result.metrics.engine_utilization()
        assert len(util) == 8
        assert sum(util) == pytest.approx(1.0)
        noc = result.metrics.noc_summary()
        # Cross-slice edges exist on a random graph, so remote traffic and
        # its flit/cycle accounting must be non-zero.
        assert noc["events_remote"] > 0
        assert noc["flits"] > 0
        assert noc["cycles"] > 0
        # Discrete quantities come back as ints (JSON/metrics friendly);
        # only the modeled cycle count is fractional.
        for key in ("events_local", "events_remote", "flits"):
            assert isinstance(noc[key], int)

    def test_single_engine_has_no_remote_traffic(self):
        algorithm = make_algorithm("sssp", source=0)
        graph = make_graph_for(algorithm, n=40, m=160, seed=3)
        engine = GraphPulseEngine(
            make_algorithm("sssp", source=0), engine="sharded", num_engines=1
        )
        result = engine.compute(graph.snapshot())
        noc = result.metrics.noc_summary()
        assert noc["events_remote"] == 0
        assert noc["flits"] == 0
