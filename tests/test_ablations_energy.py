"""Tests for the ablation and energy experiment modules."""

import pytest

from repro.experiments import ablations, energy
from repro.experiments.harness import clear_cache


class TestCoalescing:
    def test_rates_bounded(self):
        stats = ablations.coalescing_effectiveness(
            graphs=["WK"], algorithms=["sssp"]
        )
        assert len(stats) == 1
        assert 0.0 <= stats[0].rate < 1.0
        assert stats[0].inserts > 0

    def test_render(self):
        stats = ablations.coalescing_effectiveness(graphs=["WK"], algorithms=["sssp"])
        text = ablations.render_coalescing(stats)
        assert "SSSP" in text and "Rate" in text

    def test_zero_inserts_rate(self):
        stat = ablations.CoalescingStat("x", "y", inserts=0, coalesced=0)
        assert stat.rate == 0.0


class TestSweeps:
    def test_queue_row_sweep_shape(self):
        points = ablations.queue_row_sweep(widths=(4, 16))
        assert [p.value for p in points] == [4, 16]
        assert all(p.time_us > 0 for p in points)

    def test_dram_channel_sweep_monotone(self):
        points = ablations.dram_channel_sweep(channels=(1, 8))
        assert points[0].time_us >= points[-1].time_us

    def test_render_sweep(self):
        points = ablations.dram_channel_sweep(channels=(1, 2))
        text = ablations.render_sweep(points, "T")
        assert text.startswith("T")


class TestOverheadSensitivity:
    def test_advantage_grows_with_floor(self):
        points = ablations.software_overhead_sensitivity(
            overheads_us=(0.0, 200.0), batch_sizes=(8,)
        )
        assert points[0].advantage < points[1].advantage

    def test_render(self):
        points = ablations.software_overhead_sensitivity(
            overheads_us=(0.0,), batch_sizes=(8,)
        )
        assert "Advantage" in ablations.render_overheads(points)


class TestEnergy:
    @pytest.fixture(scope="class", autouse=True)
    def fresh_cache(self):
        clear_cache()
        yield

    def test_gain_positive(self):
        points = energy.run(graphs=["WK"], algorithms=["sssp"])
        assert len(points) == 1
        assert points[0].efficiency_gain > 1.0
        assert points[0].jetstream_mj > 0

    def test_render_has_gmean(self):
        points = energy.run(graphs=["WK"], algorithms=["sssp"])
        text = energy.render(points)
        assert "GMean" in text

    def test_mean_gain(self):
        points = [
            energy.EnergyPoint("a", "g", jetstream_mj=1.0, graphpulse_mj=4.0),
            energy.EnergyPoint("a", "h", jetstream_mj=1.0, graphpulse_mj=16.0),
        ]
        assert energy.mean_gain(points) == pytest.approx(8.0)

    def test_zero_energy_gain_inf(self):
        point = energy.EnergyPoint("a", "g", jetstream_mj=0.0, graphpulse_mj=1.0)
        assert point.efficiency_gain == float("inf")
