"""Streaming-equivalence goldens: the seed pipeline is bit-stable.

The vectorized seed pipeline (array-native ``DynamicGraph`` + batched seed
generation in ``core/streaming.py``) must reproduce the original per-edge
Python orchestrator *exactly*: identical converged states (hashed), the
same per-phase/per-round work vectors (``events_processed``,
``events_generated``, ``vertex_reads``, ``request_events``, ...), the same
impacted-vertex sets, and the same lifetime queue counters.

``tests/data/stream_goldens.json`` pins those observables as captured from
the pre-refactor scalar implementation. Three invariants are enforced:

1. **Golden equality** — every scenario, replayed on the current code with
   its default configuration, matches the pinned record field for field.
2. **Pipeline cross-parity** — when the engine exposes a seed-pipeline
   selector, the scalar fallback and the array pipeline agree bitwise.
3. **Reference states** — final converged states equal a cold-start
   ``reference.py`` computation on the final graph (per-algorithm
   tolerance), across algorithms × policies.

Regenerate (only on purpose, from a known-good tree):

    PYTHONPATH=src python tests/test_stream_golden.py --update
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import pytest

from repro.algorithms import make_algorithm
from repro.core.policies import DeletePolicy
from repro.core.streaming import JetStreamEngine
from repro.graph import generators
from repro.graph.dynamic import DynamicGraph
from repro.reference import compute_reference
from repro.streams import Edge, StreamGenerator, UpdateBatch

GOLDEN_PATH = Path(__file__).parent / "data" / "stream_goldens.json"

ALGORITHMS = ["sssp", "bfs", "cc", "sswp", "pagerank", "adsorption"]
POLICIES = {
    "base": DeletePolicy.BASE,
    "vap": DeletePolicy.VAP,
    "dap": DeletePolicy.DAP,
}

NUM_VERTICES = 50
NUM_EDGES = 200
GRAPH_SEED = 11
STREAM_SEED = 7
NUM_BATCHES = 3
BATCH_SIZE = 12

#: Round-vector column order (mirrors ``repro.core.metrics.CSV_HEADER``
#: minus the phase/round labels).
ROUND_FIELDS = (
    "events_processed",
    "events_generated",
    "queue_inserts",
    "coalesce_ops",
    "vertex_reads",
    "vertex_writes",
    "edges_read",
    "vertex_lines",
    "edge_lines",
    "dram_pages",
    "spill_bytes",
)


# ----------------------------------------------------------------------
# Scenario construction
# ----------------------------------------------------------------------
def _build_graph(algorithm, n: int = NUM_VERTICES, m: int = NUM_EDGES,
                 seed: int = GRAPH_SEED) -> DynamicGraph:
    edges = generators.erdos_renyi(n, m, seed=seed)
    if algorithm.needs_symmetric:
        graph = DynamicGraph(n, symmetric=True)
        seen = set()
        for u, v, w in edges:
            key = (min(u, v), max(u, v))
            if key in seen:
                continue
            seen.add(key)
            graph.add_edge(u, v, w, _count_version=False)
        return graph
    return DynamicGraph.from_edges(edges, n)


def _stream_batches(algorithm) -> List[UpdateBatch]:
    """The scenario's stream, captured against a throwaway graph copy."""
    graph = _build_graph(algorithm)
    generator = StreamGenerator(graph, seed=STREAM_SEED)
    return list(generator.stream(BATCH_SIZE, NUM_BATCHES))


def _growth_batches(n: int) -> List[UpdateBatch]:
    """Manual batches that create vertices mid-stream (§2.1 growth)."""
    return [
        UpdateBatch(
            insertions=[Edge(n, 3, 5.0), Edge(n + 1, n, 2.0)],
            deletions=[],
        ),
        UpdateBatch(
            insertions=[Edge(5, n + 1, 4.0), Edge(n + 2, n + 2, 1.0)],
            deletions=[Edge(n, 3)],
        ),
    ]


def _scenarios() -> List[dict]:
    out = []
    for name in ALGORITHMS:
        for policy in POLICIES:
            out.append(
                {
                    "key": f"{name}/{policy}",
                    "algorithm": name,
                    "policy": policy,
                    "flavor": "stream",
                }
            )
    for name in ("pagerank", "adsorption"):
        out.append(
            {
                "key": f"{name}/two-phase",
                "algorithm": name,
                "policy": "base",
                "flavor": "two_phase",
            }
        )
    for name in ("sssp", "cc", "pagerank"):
        out.append(
            {
                "key": f"{name}/growth",
                "algorithm": name,
                "policy": "dap" if name == "sssp" else "base",
                "flavor": "growth",
            }
        )
    return out


SCENARIOS = _scenarios()
SCENARIO_KEYS = [s["key"] for s in SCENARIOS]


# ----------------------------------------------------------------------
# Scenario execution and observation capture
# ----------------------------------------------------------------------
def _phase_record(phase) -> dict:
    return {
        "name": phase.name,
        "request_events": int(phase.request_events),
        "vertices_reset": int(phase.vertices_reset),
        "deletes_discarded": int(phase.deletes_discarded),
        "rounds": [
            [int(getattr(work, f)) for f in ROUND_FIELDS]
            for work in phase.rounds
        ],
    }


def _result_record(result) -> dict:
    return {
        "version": int(result.graph_version),
        "states_sha": hashlib.sha256(result.states.tobytes()).hexdigest(),
        "impacted": [int(v) for v in result.impacted],
        "queue": {k: int(v) for k, v in sorted((result.queue_stats or {}).items())},
        "phases": [_phase_record(p) for p in result.metrics.phases],
    }


def run_scenario(scenario: dict, engine: str = "auto",
                 seed_pipeline: Optional[str] = None) -> Tuple[dict, JetStreamEngine]:
    """Replay one scenario; returns (serializable record, engine)."""
    algorithm = make_algorithm(scenario["algorithm"], source=0)
    graph = _build_graph(algorithm)
    kwargs = {}
    if scenario["flavor"] == "two_phase":
        kwargs["two_phase_accumulative"] = True
    if seed_pipeline is not None:
        kwargs["seed_pipeline"] = seed_pipeline
    stream_engine = JetStreamEngine(
        graph,
        algorithm,
        policy=POLICIES[scenario["policy"]],
        engine=engine,
        **kwargs,
    )
    if scenario["flavor"] == "growth":
        batches = _growth_batches(graph.num_vertices)
    else:
        batches = _stream_batches(algorithm)
    runs = [stream_engine.initial_compute()]
    for batch in batches:
        runs.append(stream_engine.apply_batch(batch))
    record = {
        "scenario": scenario["key"],
        "runs": [_result_record(r) for r in runs],
    }
    return record, stream_engine


def _assert_records_equal(actual: dict, expected: dict, context: str) -> None:
    assert len(actual["runs"]) == len(expected["runs"]), context
    for i, (a, e) in enumerate(zip(actual["runs"], expected["runs"])):
        ctx = f"{context} run {i}"
        assert a["version"] == e["version"], ctx
        assert a["impacted"] == e["impacted"], ctx
        assert a["queue"] == e["queue"], f"{ctx}: queue stats drifted"
        assert len(a["phases"]) == len(e["phases"]), ctx
        for ap, ep in zip(a["phases"], e["phases"]):
            pctx = f"{ctx} phase {ep['name']}"
            assert ap["name"] == ep["name"], pctx
            assert ap["request_events"] == ep["request_events"], pctx
            assert ap["vertices_reset"] == ep["vertices_reset"], pctx
            assert ap["deletes_discarded"] == ep["deletes_discarded"], pctx
            assert ap["rounds"] == ep["rounds"], (
                f"{pctx}: round work vectors drifted "
                f"(fields {ROUND_FIELDS})"
            )
        assert a["states_sha"] == e["states_sha"], f"{ctx}: states drifted"


# ----------------------------------------------------------------------
# Tests
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def goldens() -> Dict[str, dict]:
    if not GOLDEN_PATH.exists():
        pytest.skip(f"golden file missing: {GOLDEN_PATH}")
    data = json.loads(GOLDEN_PATH.read_text())
    return {rec["scenario"]: rec for rec in data["scenarios"]}


@pytest.mark.parametrize("key", SCENARIO_KEYS)
def test_matches_pre_refactor_golden(goldens, key):
    """Default pipeline reproduces the pinned pre-refactor observables."""
    scenario = next(s for s in SCENARIOS if s["key"] == key)
    record, _ = run_scenario(scenario)
    _assert_records_equal(record, goldens[key], key)


@pytest.mark.parametrize("key", SCENARIO_KEYS)
def test_scalar_and_array_seed_pipelines_agree(key):
    """The scalar fallback and the array seed pipeline are bit-identical."""
    scenario = next(s for s in SCENARIOS if s["key"] == key)
    scalar, _ = run_scenario(scenario, seed_pipeline="scalar")
    vector, _ = run_scenario(scenario, seed_pipeline="array")
    _assert_records_equal(vector, scalar, key)


@pytest.mark.parametrize("key", SCENARIO_KEYS)
def test_final_states_match_reference(key):
    """Incremental convergence equals a cold-start reference computation."""
    scenario = next(s for s in SCENARIOS if s["key"] == key)
    _, engine = run_scenario(scenario)
    csr = engine.graph.snapshot()
    expected = compute_reference(engine.algorithm, csr)
    states = engine.states
    bad = [
        i
        for i in range(csr.num_vertices)
        if not engine.algorithm.values_close(float(states[i]), float(expected[i]))
    ]
    assert not bad, f"{key}: states diverge from reference at {bad[:5]}"


# ----------------------------------------------------------------------
# Regeneration entry point
# ----------------------------------------------------------------------
def _regenerate() -> None:
    records = []
    for scenario in SCENARIOS:
        record, _ = run_scenario(scenario)
        records.append(record)
        print(f"captured {scenario['key']}: {len(record['runs'])} runs")
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps({"scenarios": records}, indent=1) + "\n"
    )
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    import sys

    if "--update" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
