"""JetStream streaming tests for accumulative algorithms (Algorithm 3/6)."""

import numpy as np
import pytest

from repro import reference
from repro.algorithms import make_algorithm
from repro.core.streaming import JetStreamEngine
from repro.graph.dynamic import DynamicGraph
from repro.streams import Edge, StreamGenerator, UpdateBatch

from conftest import assert_states_match, random_digraph

ACCUMULATIVE = ["pagerank", "adsorption"]
MODES = [False, True]  # net-correction (default) and paper two-phase


def check(engine, context=""):
    expected = reference.compute_reference(engine.algorithm, engine.graph.snapshot())
    assert_states_match(engine.algorithm, engine.states, expected, context)


class TestRandomStreams:
    @pytest.mark.parametrize("two_phase", MODES)
    @pytest.mark.parametrize("name", ACCUMULATIVE)
    def test_streaming_matches_reference(self, name, two_phase):
        graph = random_digraph(n=50, m=200, seed=41)
        engine = JetStreamEngine(
            graph, make_algorithm(name), two_phase_accumulative=two_phase
        )
        engine.initial_compute()
        stream = StreamGenerator(graph, seed=42, insertion_ratio=0.6)
        for i in range(4):
            engine.apply_batch(stream.next_batch(12))
            check(engine, f"{name}/two_phase={two_phase}/batch{i}")

    @pytest.mark.parametrize("two_phase", MODES)
    @pytest.mark.parametrize("ratio", [0.0, 1.0])
    def test_pure_compositions(self, two_phase, ratio):
        graph = random_digraph(n=50, m=200, seed=43)
        engine = JetStreamEngine(
            graph, make_algorithm("pagerank"), two_phase_accumulative=two_phase
        )
        engine.initial_compute()
        stream = StreamGenerator(graph, seed=44)
        engine.apply_batch(stream.next_batch(10, insertion_ratio=ratio))
        check(engine)

    def test_modes_agree(self):
        """Net-correction and two-phase flows converge to the same result."""
        results = []
        for two_phase in MODES:
            graph = random_digraph(n=40, m=160, seed=45)
            engine = JetStreamEngine(
                graph, make_algorithm("pagerank"), two_phase_accumulative=two_phase
            )
            engine.initial_compute()
            stream = StreamGenerator(graph, seed=46)
            engine.apply_batch(stream.next_batch(10))
            results.append(engine.query_result())
        algorithm = make_algorithm("pagerank")
        assert_states_match(algorithm, results[0], results[1], "mode agreement")


class TestDegreeDependence:
    def test_insertion_reweights_existing_edges(self):
        """Adding an out-edge halves the source's other contributions."""
        graph = DynamicGraph.from_edges([(0, 1, 1.0)], 3)
        alg = make_algorithm("pagerank")
        engine = JetStreamEngine(graph, alg)
        engine.initial_compute()
        rank_before = engine.states[1]
        engine.apply_batch(UpdateBatch(insertions=[Edge(0, 2, 1.0)]))
        check(engine)
        assert engine.states[1] < rank_before

    def test_deletion_reroutes_mass(self):
        graph = DynamicGraph.from_edges([(0, 1, 1.0), (0, 2, 1.0)], 3)
        engine = JetStreamEngine(graph, make_algorithm("pagerank"))
        engine.initial_compute()
        rank_before = engine.states[1]
        engine.apply_batch(UpdateBatch(deletions=[Edge(0, 2)]))
        check(engine)
        # Vertex 1 now receives vertex 0's full (previously split) mass.
        assert engine.states[1] > rank_before

    def test_cycle_with_deletion(self):
        """The Fig. 5 case: deleting one edge of a vertex on a cycle."""
        graph = DynamicGraph.from_edges(
            [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0), (1, 3, 1.0), (1, 4, 1.0)], 5
        )
        engine = JetStreamEngine(graph, make_algorithm("pagerank"))
        engine.initial_compute()
        engine.apply_batch(UpdateBatch(deletions=[Edge(1, 2)]))
        check(engine)

    def test_two_phase_uses_intermediate_sink(self):
        """The two-phase flow must produce correct results on a cycle
        through the mutated source (what the sink graph exists for)."""
        graph = DynamicGraph.from_edges(
            [(0, 1, 1.0), (1, 0, 1.0), (0, 2, 1.0)], 3
        )
        engine = JetStreamEngine(
            graph, make_algorithm("pagerank"), two_phase_accumulative=True
        )
        engine.initial_compute()
        engine.apply_batch(UpdateBatch(deletions=[Edge(0, 2)]))
        check(engine)


class TestVertexGrowth:
    @pytest.mark.parametrize("two_phase", MODES)
    def test_new_vertex_gets_teleport_mass(self, two_phase):
        graph = DynamicGraph.from_edges([(0, 1, 1.0)], 2)
        engine = JetStreamEngine(
            graph, make_algorithm("pagerank"), two_phase_accumulative=two_phase
        )
        engine.initial_compute()
        engine.apply_batch(UpdateBatch(insertions=[Edge(1, 4, 1.0)]))
        assert len(engine.states) == 5
        check(engine)
        assert engine.states[3] == pytest.approx(0.15, abs=1e-3)

    def test_new_vertex_propagates_outward(self):
        graph = DynamicGraph.from_edges([(0, 1, 1.0)], 2)
        engine = JetStreamEngine(graph, make_algorithm("pagerank"))
        engine.initial_compute()
        engine.apply_batch(UpdateBatch(insertions=[Edge(3, 0, 1.0)]))
        check(engine)
        # Vertex 3's teleport mass flows into vertex 0.
        assert engine.states[0] > 0.15 + 0.1


class TestAdsorptionSpecifics:
    def test_weighted_normalization(self):
        """Adsorption splits by edge weight, not degree."""
        graph = DynamicGraph.from_edges([(0, 1, 3.0), (0, 2, 1.0)], 3)
        alg = make_algorithm("adsorption")
        engine = JetStreamEngine(graph, alg)
        engine.initial_compute()
        check(engine)
        assert engine.states[1] == pytest.approx(3 * engine.states[2], rel=1e-3)

    def test_injection_streaming(self):
        graph = random_digraph(n=30, m=120, seed=47)
        alg = make_algorithm("adsorption")
        alg.injections = {0: 1.0, 5: 2.0}
        engine = JetStreamEngine(graph, alg)
        engine.initial_compute()
        stream = StreamGenerator(graph, seed=48)
        engine.apply_batch(stream.next_batch(10))
        check(engine)


class TestMetricsShape:
    def test_net_mode_single_phase(self):
        graph = random_digraph(n=30, m=120, seed=49)
        engine = JetStreamEngine(graph, make_algorithm("pagerank"))
        engine.initial_compute()
        stream = StreamGenerator(graph, seed=50)
        result = engine.apply_batch(stream.next_batch(8))
        assert [p.name for p in result.metrics.phases] == ["reevaluation"]

    def test_two_phase_mode_phases(self):
        graph = random_digraph(n=30, m=120, seed=49)
        engine = JetStreamEngine(
            graph, make_algorithm("pagerank"), two_phase_accumulative=True
        )
        engine.initial_compute()
        stream = StreamGenerator(graph, seed=50)
        result = engine.apply_batch(stream.next_batch(8))
        assert [p.name for p in result.metrics.phases] == [
            "delete-negation",
            "reevaluation",
        ]

    def test_incremental_cheaper_than_initial(self):
        """The headline property: a small batch costs far fewer events
        than the initial evaluation."""
        graph = random_digraph(n=200, m=900, seed=51)
        engine = JetStreamEngine(graph, make_algorithm("pagerank", tolerance=1e-4))
        initial = engine.initial_compute()
        stream = StreamGenerator(graph, seed=52)
        result = engine.apply_batch(stream.next_batch(4))
        assert (
            result.metrics.events_processed < initial.metrics.events_processed / 2
        )
