"""Scalar <-> vectorized engine parity (the tentpole invariant).

The structure-of-arrays substrate (``VectorQueue`` + the vectorized
``run_regular``/``run_delete`` kernels) must be a *bit-identical* drop-in
for the boxed-event reference engine: same final states, same per-round
``RoundWork`` vectors (hence identical modelled cycles/energy), same phase
extras, same queue lifetime statistics. These property-style tests sweep
every algorithm × delete policy over seeded random graphs and streams,
including multi-slice and partial-drain configurations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import make_algorithm
from repro.core.config import AcceleratorConfig
from repro.core.engine import GraphPulseEngine
from repro.core.policies import DeletePolicy
from repro.core.streaming import JetStreamEngine
from repro.graph.dynamic import DynamicGraph
from repro.streams import StreamGenerator

from conftest import make_graph_for

ALGORITHMS = ["sssp", "bfs", "cc", "sswp", "pagerank", "adsorption"]
POLICIES = [DeletePolicy.BASE, DeletePolicy.VAP, DeletePolicy.DAP]


def assert_run_parity(scalar, vector, context: str = "") -> None:
    """States bit-identical; every work vector and queue stat equal."""
    assert scalar.states.tobytes() == vector.states.tobytes(), (
        f"{context}: states diverge"
    )
    srows = scalar.metrics.to_rows()
    vrows = vector.metrics.to_rows()
    assert srows == vrows, f"{context}: per-round work vectors diverge"
    for sp, vp in zip(scalar.metrics.phases, vector.metrics.phases):
        assert sp.name == vp.name, context
        assert sp.vertices_reset == vp.vertices_reset, f"{context}: {sp.name}"
        assert sp.deletes_discarded == vp.deletes_discarded, f"{context}: {sp.name}"
        assert sp.request_events == vp.request_events, f"{context}: {sp.name}"
    assert scalar.queue_stats == vector.queue_stats, (
        f"{context}: queue lifetime stats diverge"
    )


def run_static_pair(name: str, config=None, n: int = 60, m: int = 240, seed: int = 7):
    algorithm = make_algorithm(name, source=0)
    graph = make_graph_for(algorithm, n=n, m=m, seed=seed)
    results = []
    for engine_mode in ("scalar", "vectorized"):
        engine = GraphPulseEngine(
            make_algorithm(name, source=0), config, engine=engine_mode
        )
        results.append(engine.compute(graph.snapshot()))
    return results


def run_stream_pair(
    name: str,
    policy: DeletePolicy,
    config=None,
    n: int = 50,
    m: int = 200,
    seed: int = 11,
    num_batches: int = 3,
    batch_size: int = 12,
):
    results = []
    for engine_mode in ("scalar", "vectorized"):
        algorithm = make_algorithm(name, source=0)
        graph = make_graph_for(algorithm, n=n, m=m, seed=seed)
        engine = JetStreamEngine(
            graph, algorithm, config, policy=policy, engine=engine_mode
        )
        stream = StreamGenerator(graph, seed=seed + 1)
        runs = [engine.initial_compute()]
        for _ in range(num_batches):
            runs.append(engine.apply_batch(stream.next_batch(batch_size)))
        results.append(runs)
    return results


class TestStaticParity:
    @pytest.mark.parametrize("name", ALGORITHMS)
    def test_static_compute(self, name):
        scalar, vector = run_static_pair(name)
        assert_run_parity(scalar, vector, f"static/{name}")

    @pytest.mark.parametrize("name", ["sssp", "cc", "pagerank"])
    def test_static_compute_sliced(self, name):
        config = AcceleratorConfig(queue_bytes=25 * 8)
        scalar, vector = run_static_pair(name, config, n=100, m=400, seed=21)
        assert_run_parity(scalar, vector, f"static-sliced/{name}")

    @pytest.mark.parametrize("name", ["sssp", "pagerank"])
    def test_static_compute_partial_drain(self, name):
        config = AcceleratorConfig(scheduler_rows_per_round=2)
        scalar, vector = run_static_pair(name, config, seed=33)
        assert_run_parity(scalar, vector, f"static-partial/{name}")

    def test_static_compute_linear(self):
        # Contractive operator: normalize each row's out-weight sum below 1.
        from collections import defaultdict

        from repro.graph import generators

        raw = generators.erdos_renyi(40, 160, seed=5)
        row_sum = defaultdict(float)
        for u, _, w in raw:
            row_sum[u] += abs(w)
        edges = [(u, v, 0.8 * w / row_sum[u]) for u, v, w in raw]
        graph = DynamicGraph.from_edges(edges, 40)
        results = []
        for engine_mode in ("scalar", "vectorized"):
            engine = GraphPulseEngine(
                make_algorithm("linear"), engine=engine_mode
            )
            results.append(engine.compute(graph.snapshot()))
        assert_run_parity(*results, "static/linear")


class TestStreamingParity:
    @pytest.mark.parametrize("name", ALGORITHMS)
    @pytest.mark.parametrize("policy", POLICIES)
    def test_streaming(self, name, policy):
        scalar_runs, vector_runs = run_stream_pair(name, policy)
        for index, (scalar, vector) in enumerate(zip(scalar_runs, vector_runs)):
            assert scalar.impacted == vector.impacted, (
                f"stream/{name}/{policy.name}/batch{index}: impacted diverge"
            )
            assert_run_parity(
                scalar, vector, f"stream/{name}/{policy.name}/batch{index}"
            )

    @pytest.mark.parametrize("name", ["sssp", "cc", "pagerank"])
    def test_streaming_sliced(self, name):
        config = AcceleratorConfig(queue_bytes=20 * 14)
        scalar_runs, vector_runs = run_stream_pair(
            name, DeletePolicy.DAP, config, n=80, m=320, seed=41
        )
        for index, (scalar, vector) in enumerate(zip(scalar_runs, vector_runs)):
            assert scalar.impacted == vector.impacted
            assert_run_parity(scalar, vector, f"stream-sliced/{name}/batch{index}")

    @pytest.mark.parametrize("policy", POLICIES)
    def test_streaming_partial_drain(self, policy):
        config = AcceleratorConfig(scheduler_rows_per_round=2)
        scalar_runs, vector_runs = run_stream_pair(
            "sssp", policy, config, seed=51
        )
        for index, (scalar, vector) in enumerate(zip(scalar_runs, vector_runs)):
            assert scalar.impacted == vector.impacted
            assert_run_parity(
                scalar, vector, f"stream-partial/{policy.name}/batch{index}"
            )

    def test_streaming_two_phase_accumulative(self):
        results = []
        for engine_mode in ("scalar", "vectorized"):
            algorithm = make_algorithm("pagerank")
            graph = make_graph_for(algorithm, n=50, m=200, seed=61)
            engine = JetStreamEngine(
                graph,
                algorithm,
                two_phase_accumulative=True,
                engine=engine_mode,
            )
            stream = StreamGenerator(graph, seed=62)
            runs = [engine.initial_compute()]
            for _ in range(3):
                runs.append(engine.apply_batch(stream.next_batch(10)))
            results.append(runs)
        for index, (scalar, vector) in enumerate(zip(*results)):
            assert_run_parity(scalar, vector, f"two-phase/batch{index}")


class TestEngineSelection:
    def test_scalar_flag_forces_boxed_queue(self):
        from repro.core.queue import CoalescingQueue, VectorQueue

        algorithm = make_algorithm("sssp", source=0)
        graph = make_graph_for(algorithm, n=10, m=30, seed=1)
        engine = JetStreamEngine(graph, algorithm, engine="scalar")
        engine.initial_compute()
        assert isinstance(engine.core.new_queue(), CoalescingQueue)
        vec = JetStreamEngine(
            make_graph_for(algorithm, n=10, m=30, seed=1), algorithm
        )
        vec.initial_compute()
        assert isinstance(vec.core.new_queue(), VectorQueue)

    def test_vectorized_requires_hooks(self):
        from repro.core.engine import EngineCore

        class NoHooks(type(make_algorithm("sssp"))):
            reduce_ufunc = None

        with pytest.raises(ValueError):
            EngineCore(NoHooks(source=0), engine="vectorized")

    def test_unknown_engine_rejected(self):
        from repro.core.engine import EngineCore

        with pytest.raises(ValueError):
            EngineCore(make_algorithm("sssp"), engine="simd")
