"""Cross-validation of the reference oracles against networkx."""

import math

import networkx as nx
import numpy as np
import pytest

from repro import reference
from repro.graph import generators
from repro.graph.csr import CSRGraph


@pytest.fixture(params=[1, 2, 3])
def random_csr(request) -> CSRGraph:
    return CSRGraph(40, generators.erdos_renyi(40, 160, seed=request.param))


def to_networkx(csr: CSRGraph) -> nx.DiGraph:
    graph = nx.DiGraph()
    graph.add_nodes_from(range(csr.num_vertices))
    for u, v, w in csr.edges():
        graph.add_edge(u, v, weight=w)
    return graph


class TestAgainstNetworkx:
    def test_sssp(self, random_csr):
        ours = reference.sssp(random_csr, 0)
        theirs = nx.single_source_dijkstra_path_length(to_networkx(random_csr), 0)
        for v in range(random_csr.num_vertices):
            if v in theirs:
                assert ours[v] == pytest.approx(theirs[v])
            else:
                assert math.isinf(ours[v])

    def test_bfs(self, random_csr):
        ours = reference.bfs(random_csr, 0)
        theirs = nx.single_source_shortest_path_length(to_networkx(random_csr), 0)
        for v in range(random_csr.num_vertices):
            if v in theirs:
                assert ours[v] == theirs[v]
            else:
                assert math.isinf(ours[v])

    def test_connected_components(self, random_csr):
        ours = reference.connected_components(random_csr)
        undirected = to_networkx(random_csr).to_undirected()
        for component in nx.connected_components(undirected):
            label = min(component)
            assert all(ours[v] == label for v in component)

    def test_pagerank_fixed_point(self, random_csr):
        """Our unnormalized formulation satisfies its own fixed point."""
        ranks = reference.pagerank(random_csr, alpha=0.85)
        degrees = np.diff(random_csr.out_offsets)
        for v in range(random_csr.num_vertices):
            incoming = sum(
                0.85 * ranks[u] / degrees[u] for u, _ in random_csr.in_edges(v)
            )
            assert ranks[v] == pytest.approx(0.15 + incoming, rel=1e-6)

    def test_pagerank_ordering_matches_networkx(self, random_csr):
        """Rank *ordering* agrees with networkx's normalized PageRank when
        there are no dangling vertices (same dominant eigenstructure)."""
        # Patch dangling vertices with a self-cycle-free out-edge.
        edges = list(random_csr.edges())
        degrees = np.diff(random_csr.out_offsets)
        for v in np.flatnonzero(degrees == 0):
            edges.append((int(v), int((v + 1) % random_csr.num_vertices), 1.0))
        csr = CSRGraph(random_csr.num_vertices, edges)
        ours = reference.pagerank(csr, alpha=0.85)
        theirs = nx.pagerank(to_networkx(csr).reverse() if False else to_networkx(csr), alpha=0.85, weight=None)
        top_ours = np.argsort(-ours)[:5]
        top_theirs = sorted(theirs, key=theirs.get, reverse=True)[:5]
        assert set(top_ours[:3]) & set(top_theirs[:5])


class TestWidestPath:
    def test_simple_bottleneck(self):
        csr = CSRGraph(4, [(0, 1, 10.0), (1, 3, 2.0), (0, 2, 5.0), (2, 3, 5.0)])
        widths = reference.sswp(csr, 0)
        assert widths[3] == 5.0
        assert widths[1] == 10.0

    def test_source_infinite(self):
        csr = CSRGraph(2, [(0, 1, 3.0)])
        widths = reference.sswp(csr, 0)
        assert math.isinf(widths[0])
        assert widths[1] == 3.0

    def test_unreachable_zero(self):
        csr = CSRGraph(3, [(0, 1, 3.0)])
        assert reference.sswp(csr, 0)[2] == 0.0


class TestAdsorption:
    def test_mass_conservation_bound(self):
        csr = CSRGraph(3, [(0, 1, 1.0), (1, 2, 1.0)])
        values = reference.adsorption(csr, {0: 1.0}, p_inject=0.25, p_continue=0.7)
        assert values[0] == pytest.approx(0.25)
        assert values[1] == pytest.approx(0.25 * 0.7)
        assert values[2] == pytest.approx(0.25 * 0.49)

    def test_dispatch(self):
        from repro.algorithms import make_algorithm

        csr = CSRGraph(3, [(0, 1, 1.0)])
        for name in ("sssp", "sswp", "bfs", "cc", "pagerank", "adsorption"):
            result = reference.compute_reference(make_algorithm(name, source=0), csr)
            assert len(result) == 3

    def test_dispatch_unknown(self):
        class Fake:
            name = "nope"

        with pytest.raises(ValueError):
            reference.compute_reference(Fake(), CSRGraph(1, []))
