"""Unit tests for the Table 2 dataset stand-ins."""

import pytest

from repro.graph import datasets


class TestSpecs:
    def test_all_five_present(self):
        assert set(datasets.ORDER) == {"WK", "FB", "LJ", "UK", "TW"}
        assert set(datasets.SPECS) == set(datasets.ORDER)

    def test_relative_size_ordering(self):
        """TW is the largest, UK next — mirroring the paper's ordering."""
        sizes = {k: datasets.SPECS[k].num_edges for k in datasets.ORDER}
        assert sizes["TW"] == max(sizes.values())
        assert sizes["TW"] > sizes["UK"] > sizes["LJ"] > sizes["FB"]

    def test_load_matches_spec_scale(self):
        graph = datasets.load("WK")
        spec = datasets.SPECS["WK"]
        assert graph.num_vertices == spec.num_vertices
        # ensure_reachable_core may add a few stitching edges.
        assert abs(graph.num_edges - spec.num_edges) < 0.1 * spec.num_edges

    def test_load_deterministic(self):
        a = sorted(datasets.load("FB", seed=1).edges())
        b = sorted(datasets.load("FB", seed=1).edges())
        assert a == b

    def test_load_case_insensitive(self):
        assert datasets.load("wk").num_vertices == datasets.SPECS["WK"].num_vertices

    def test_unknown_key_rejected(self):
        with pytest.raises(KeyError):
            datasets.load("XX")

    def test_load_symmetric(self):
        graph = datasets.load("WK", symmetric=True)
        assert graph.symmetric
        for u, v, _ in list(graph.edges())[:50]:
            assert graph.has_edge(v, u)

    def test_load_csr(self):
        csr = datasets.load_csr("FB")
        assert csr.num_vertices == datasets.SPECS["FB"].num_vertices


class TestBatchScaling:
    def test_scaled_batch_preserves_ratio_ordering(self):
        """WK has the largest batch:graph ratio in the paper, TW the smallest."""
        ratios = {
            k: datasets.scaled_batch_size(k) / datasets.SPECS[k].num_edges
            for k in datasets.ORDER
        }
        assert ratios["WK"] > ratios["UK"]
        assert ratios["WK"] > ratios["TW"]

    def test_scaled_batch_minimum(self):
        assert datasets.scaled_batch_size("TW") >= 16

    def test_custom_paper_batch(self):
        small = datasets.scaled_batch_size("WK", paper_batch=10_000)
        large = datasets.scaled_batch_size("WK", paper_batch=100_000)
        assert small <= large


class TestTable2Rows:
    def test_rows_complete(self):
        rows = datasets.table2_rows()
        assert len(rows) == 5
        assert all(int(r["standin_nodes"]) > 0 for r in rows)

    def test_rows_mention_paper_scale(self):
        rows = datasets.table2_rows()
        assert rows[0]["paper_edges"] == "45.03M"
