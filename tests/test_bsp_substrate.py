"""Unit tests for the shared BSP substrate used by the software baselines."""

import numpy as np
import pytest

from repro.algorithms import make_algorithm
from repro.baselines.bsp import BSPEngine, neighbors_pull, run_pull_refinement
from repro.core.metrics import SoftwareWork
from repro.graph.csr import CSRGraph
from repro import reference


@pytest.fixture
def diamond():
    # 0 -> {1, 2} -> 3
    return CSRGraph(4, [(0, 1, 1.0), (0, 2, 4.0), (1, 3, 1.0), (2, 3, 1.0)])


class TestRunSelective:
    def test_converges_to_dijkstra(self, diamond):
        algorithm = make_algorithm("sssp", source=0)
        engine = BSPEngine(algorithm)
        states = np.full(4, algorithm.identity)
        states[0] = 0.0
        work = SoftwareWork()
        engine.run_selective(diamond, states, {0}, work)
        assert np.array_equal(states, reference.sssp(diamond, 0))

    def test_counts_barriers_per_iteration(self, diamond):
        algorithm = make_algorithm("sssp", source=0)
        engine = BSPEngine(algorithm)
        states = np.full(4, algorithm.identity)
        states[0] = 0.0
        work = SoftwareWork()
        engine.run_selective(diamond, states, {0}, work)
        assert work.iterations >= 2  # two BFS levels at least
        assert work.atomics > 0
        assert work.vertex_reads_sequential >= work.iterations * 4

    def test_tracks_dependency_and_level(self, diamond):
        algorithm = make_algorithm("sssp", source=0)
        engine = BSPEngine(algorithm)
        states = np.full(4, algorithm.identity)
        states[0] = 0.0
        dependency = np.full(4, -1)
        level = np.zeros(4, dtype=np.int64)
        engine.run_selective(diamond, states, {0}, SoftwareWork(), dependency, level)
        assert dependency[3] == 1  # via the cheap path
        assert level[3] == 2

    def test_rejects_accumulative(self, diamond):
        engine = BSPEngine(make_algorithm("pagerank"))
        with pytest.raises(ValueError):
            engine.run_selective(diamond, np.zeros(4), set(), SoftwareWork())


class TestRunAccumulative:
    def test_pagerank_from_deltas(self, diamond):
        algorithm = make_algorithm("pagerank", tolerance=1e-10)
        engine = BSPEngine(algorithm)
        states = np.zeros(4)
        deltas = np.full(4, 1.0 - algorithm.alpha)
        work = SoftwareWork()
        engine.run_accumulative(diamond, states, deltas, work)
        expected = reference.pagerank(diamond, alpha=algorithm.alpha)
        assert np.allclose(states, expected, atol=1e-6)

    def test_rejects_selective(self, diamond):
        engine = BSPEngine(make_algorithm("sssp"))
        with pytest.raises(ValueError):
            engine.run_accumulative(diamond, np.zeros(4), np.zeros(4), SoftwareWork())


class TestPullRefinement:
    def test_refines_to_fixed_point(self, diamond):
        algorithm = make_algorithm("pagerank", tolerance=1e-10)
        states = reference.pagerank(diamond, alpha=algorithm.alpha).copy()
        # Perturb one vertex; refinement must heal it and its downstream.
        states[1] -= 0.05
        base = np.full(4, 1.0 - algorithm.alpha)
        work = SoftwareWork()
        run_pull_refinement(algorithm, diamond, states, base, {1, 3}, work)
        expected = reference.pagerank(diamond, alpha=algorithm.alpha)
        assert np.allclose(states, expected, atol=1e-6)

    def test_counts_in_edge_reads(self, diamond):
        algorithm = make_algorithm("pagerank", tolerance=1e-10)
        states = reference.pagerank(diamond, alpha=algorithm.alpha).copy()
        states[3] += 0.1
        base = np.full(4, 1.0 - algorithm.alpha)
        work = SoftwareWork()
        run_pull_refinement(algorithm, diamond, states, base, {3}, work)
        # Vertex 3 has two in-edges; at least those were re-read.
        assert work.vertex_reads_random >= 2
        assert work.iterations >= 1

    def test_no_seeds_no_work(self, diamond):
        algorithm = make_algorithm("pagerank")
        work = SoftwareWork()
        run_pull_refinement(
            algorithm, diamond, np.zeros(4), np.zeros(4), set(), work
        )
        assert work.iterations == 0


class TestNeighborsPull:
    def test_returns_in_edges_and_counts(self, diamond):
        work = SoftwareWork()
        sources = list(neighbors_pull(diamond, 3, work))
        assert sorted(u for u, _ in sources) == [1, 2]
        assert work.vertex_reads_random == 2
        assert work.edges_traversed == 2

    def test_no_in_edges(self, diamond):
        work = SoftwareWork()
        assert list(neighbors_pull(diamond, 0, work)) == []
