"""Unit tests for the dynamic (host-side) graph and version store."""

import pytest

from repro.graph.dynamic import (
    DynamicGraph,
    GraphMutationError,
    GraphVersionStore,
    build_symmetric_graph,
)


class TestMutation:
    def test_add_edge(self):
        graph = DynamicGraph(3)
        graph.add_edge(0, 1, 2.0)
        assert graph.has_edge(0, 1)
        assert graph.edge_weight(0, 1) == 2.0
        assert graph.num_edges == 1

    def test_add_duplicate_rejected(self):
        graph = DynamicGraph(3)
        graph.add_edge(0, 1)
        with pytest.raises(GraphMutationError):
            graph.add_edge(0, 1, 5.0)

    def test_remove_edge_returns_weight(self):
        graph = DynamicGraph(3)
        graph.add_edge(0, 1, 7.0)
        assert graph.remove_edge(0, 1) == 7.0
        assert not graph.has_edge(0, 1)
        assert graph.num_edges == 0

    def test_remove_missing_rejected(self):
        graph = DynamicGraph(3)
        with pytest.raises(GraphMutationError):
            graph.remove_edge(0, 1)

    def test_vertex_growth_on_insert(self):
        graph = DynamicGraph(2)
        graph.add_edge(0, 9)
        assert graph.num_vertices == 10

    def test_version_bumps(self):
        graph = DynamicGraph(3)
        v0 = graph.version
        graph.add_edge(0, 1)
        graph.remove_edge(0, 1)
        assert graph.version == v0 + 2

    def test_apply_batch_single_version_bump(self):
        graph = DynamicGraph.from_edges([(0, 1, 1.0), (1, 2, 2.0)], 3)
        v0 = graph.version
        graph.apply_batch([(2, 0, 3.0)], [(0, 1)])
        assert graph.version == v0 + 1
        assert graph.has_edge(2, 0)
        assert not graph.has_edge(0, 1)

    def test_apply_batch_weight_change_idiom(self):
        graph = DynamicGraph.from_edges([(0, 1, 1.0)], 2)
        graph.apply_batch([(0, 1, 9.0)], [(0, 1)])
        assert graph.edge_weight(0, 1) == 9.0

    def test_degrees(self):
        graph = DynamicGraph.from_edges([(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0)], 3)
        assert graph.out_degree(0) == 2
        assert graph.in_degree(2) == 2
        assert graph.out_degree(2) == 0


class TestSymmetric:
    def test_add_mirrors(self):
        graph = DynamicGraph(3, symmetric=True)
        graph.add_edge(0, 1, 2.0)
        assert graph.has_edge(0, 1) and graph.has_edge(1, 0)
        assert graph.num_edges == 2

    def test_remove_mirrors(self):
        graph = DynamicGraph(3, symmetric=True)
        graph.add_edge(0, 1, 2.0)
        graph.remove_edge(0, 1)
        assert graph.num_edges == 0

    def test_remove_via_mirror_direction(self):
        graph = DynamicGraph(3, symmetric=True)
        graph.add_edge(0, 1, 2.0)
        graph.remove_edge(1, 0)
        assert graph.num_edges == 0

    def test_self_loop_not_doubled(self):
        graph = DynamicGraph(3, symmetric=True)
        graph.add_edge(1, 1, 2.0)
        assert graph.num_edges == 1


class TestSnapshots:
    def test_snapshot_matches_edges(self):
        edges = [(0, 1, 1.0), (1, 2, 2.0), (2, 0, 3.0)]
        graph = DynamicGraph.from_edges(edges, 3)
        snap = graph.snapshot()
        assert sorted(snap.edges()) == sorted(edges)

    def test_snapshot_is_isolated_from_mutation(self):
        graph = DynamicGraph.from_edges([(0, 1, 1.0)], 2)
        snap = graph.snapshot()
        graph.remove_edge(0, 1)
        assert snap.has_edge(0, 1)

    def test_snapshot_with_sinks_drops_out_edges(self):
        graph = DynamicGraph.from_edges(
            [(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0), (2, 0, 1.0)], 3
        )
        snap = graph.snapshot_with_sinks({0})
        assert snap.out_degree(0) == 0
        assert snap.has_edge(1, 2) and snap.has_edge(2, 0)
        assert snap.num_edges == 2

    def test_from_csr_round_trip(self):
        graph = DynamicGraph.from_edges([(0, 1, 1.5), (1, 0, 2.5)], 2)
        again = DynamicGraph.from_csr(graph.snapshot())
        assert sorted(again.edges()) == sorted(graph.edges())


class TestVersionStore:
    def test_records_versions(self):
        graph = DynamicGraph.from_edges([(0, 1, 1.0)], 2)
        store = GraphVersionStore(graph)
        graph.apply_batch([(1, 0, 2.0)], [])
        store.record()
        assert len(store) == 2
        assert store.latest().has_edge(1, 0)

    def test_get_by_version(self):
        graph = DynamicGraph.from_edges([(0, 1, 1.0)], 2)
        store = GraphVersionStore(graph)
        first_version = graph.version
        graph.apply_batch([], [(0, 1)])
        store.record()
        assert store.get(first_version).has_edge(0, 1)
        assert not store.latest().has_edge(0, 1)

    def test_capacity_evicts_oldest(self):
        graph = DynamicGraph.from_edges([(0, 1, 1.0)], 2)
        store = GraphVersionStore(graph, capacity=2)
        v0 = graph.version
        for i in range(3):
            graph.apply_batch([(1, 0, 1.0)] if i == 0 else [], [] if i == 0 else [(1, 0)] if i == 1 else [(0, 1)])
            store.record()
        assert len(store) == 2
        with pytest.raises(KeyError):
            store.get(v0)

    def test_versions_listing(self):
        graph = DynamicGraph.from_edges([(0, 1, 1.0)], 2)
        store = GraphVersionStore(graph)
        assert store.versions() == [graph.version]


class TestBuildSymmetricGraph:
    """The shared symmetric-build helper (host, CLI, benchmarks)."""

    def test_reverse_duplicates_collapse(self):
        graph = build_symmetric_graph([(0, 1, 2.0), (1, 0, 2.0), (1, 2, 3.0)])
        assert graph.symmetric
        # One undirected edge per pair, mirrored into both directions.
        assert graph.num_edges == 4
        assert graph.edge_weight(0, 1) == 2.0
        assert graph.edge_weight(1, 0) == 2.0

    def test_num_vertices_floor_applied(self):
        graph = build_symmetric_graph([(0, 1, 1.0)], num_vertices=10)
        assert graph.num_vertices == 10

    def test_grows_past_floor(self):
        graph = build_symmetric_graph([(0, 7, 1.0)], num_vertices=3)
        assert graph.num_vertices == 8

    def test_conflicting_weight_warns_and_keeps_first(self):
        with pytest.warns(UserWarning, match="conflicts"):
            graph = build_symmetric_graph([(0, 1, 2.0), (1, 0, 9.0)])
        assert graph.edge_weight(0, 1) == 2.0
        assert graph.edge_weight(1, 0) == 2.0

    def test_conflicting_weight_raise_mode(self):
        with pytest.raises(GraphMutationError, match="conflicts"):
            build_symmetric_graph(
                [(0, 1, 2.0), (1, 0, 9.0)], on_conflict="raise"
            )

    def test_conflicting_weight_silent_mode(self):
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            graph = build_symmetric_graph(
                [(0, 1, 2.0), (1, 0, 9.0)], on_conflict="silent"
            )
        assert graph.edge_weight(0, 1) == 2.0

    def test_matching_duplicate_is_quiet(self):
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            graph = build_symmetric_graph([(0, 1, 2.0), (1, 0, 2.0)])
        assert graph.num_edges == 2

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            build_symmetric_graph([], on_conflict="explode")

    def test_self_loop_kept_once(self):
        graph = build_symmetric_graph([(2, 2, 1.0), (2, 2, 1.0)])
        assert graph.num_edges == 1
