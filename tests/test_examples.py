"""Smoke tests: the fast examples run end to end as subprocesses.

The longer examples (social monitoring, dashboard, sizing) are exercised
by manual runs and the benchmark suite; here we pin the quick ones so a
refactor cannot silently break the documented entry points.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestQuickstart:
    def test_runs_and_matches_paper_values(self):
        out = run_example("quickstart.py")
        assert "Incremental result matches cold-start recomputation." in out
        # Fig. 4(a) converged distances.
        assert "G: 19" in out
        # Fig. 4(b)/(c) values after the batch.
        assert "D: 3" in out and "E: 10" in out


class TestCircuitLinearSolver:
    def test_runs_and_validates(self):
        out = run_example("circuit_linear_solver.py")
        assert "matched the dense numpy solve" in out
        assert "DMA" in out


class TestTracedStreamRun:
    def test_runs_and_reconstructs_metrics(self):
        out = run_example("traced_stream_run.py")
        assert "matches in-process metrics" in out
        assert "Mcyc/s" in out


class TestAllExamplesExist:
    @pytest.mark.parametrize(
        "name",
        [
            "quickstart.py",
            "social_network_monitoring.py",
            "road_network_routing.py",
            "streaming_pagerank_dashboard.py",
            "accelerator_sizing.py",
            "circuit_linear_solver.py",
            "traced_stream_run.py",
        ],
    )
    def test_present_and_has_main(self, name):
        source = (EXAMPLES / name).read_text(encoding="utf-8")
        assert "def main()" in source
        assert '__main__' in source
        assert source.lstrip().startswith('"""')
