"""Unit tests for events and the coalescing queue."""

import numpy as np
import pytest

from repro.algorithms import PageRank, SSSP
from repro.core.config import AcceleratorConfig
from repro.core.events import NO_SOURCE, Event, EventBatch, EventFlags
from repro.core.metrics import RoundWork
from repro.core.policies import DeletePolicy
from repro.core.queue import CoalescingQueue, QueueError, VectorQueue


def make_queue(policy=DeletePolicy.DAP, algorithm=None, num_vertices=64, slice_of=None):
    return CoalescingQueue(
        algorithm or SSSP(),
        AcceleratorConfig(),
        policy,
        num_vertices=num_vertices,
        slice_of=slice_of,
    )


class TestEvent:
    def test_flags(self):
        assert Event(0, 1.0, int(EventFlags.DELETE)).is_delete
        assert Event(0, 1.0, int(EventFlags.REQUEST)).is_request
        regular = Event(0, 1.0)
        assert not regular.is_delete and not regular.is_request

    def test_default_source(self):
        assert Event(3, 1.0).source == NO_SOURCE

    def test_size_bytes(self):
        config = AcceleratorConfig()
        event = Event(0, 1.0)
        assert event.size_bytes(config, dap=True) == config.event_bytes_dap
        assert event.size_bytes(config, dap=False) == config.event_bytes_jetstream

    def test_repr_mentions_flags(self):
        assert "DEL" in repr(Event(0, 1.0, 1))
        assert "REQ" in repr(Event(0, 1.0, 2))


class TestRegularCoalescing:
    def test_insert_then_drain(self):
        queue = make_queue()
        work = RoundWork()
        queue.insert(Event(5, 3.0), work)
        batches = queue.drain_round(work)
        assert [e.target for batch in batches for e in batch] == [5]
        assert not queue.pending()

    def test_coalesce_keeps_dominant(self):
        queue = make_queue()
        work = RoundWork()
        queue.insert(Event(5, 3.0, 0, 1), work)
        queue.insert(Event(5, 7.0, 0, 2), work)
        [batch] = queue.drain_round(work)
        assert batch[0].payload == 3.0  # min for SSSP
        assert batch[0].source == 1  # dominant contribution's source
        assert queue.total_coalesces == 1

    def test_coalesce_switches_source_when_new_dominates(self):
        queue = make_queue()
        work = RoundWork()
        queue.insert(Event(5, 7.0, 0, 1), work)
        queue.insert(Event(5, 3.0, 0, 2), work)
        [batch] = queue.drain_round(work)
        assert batch[0].payload == 3.0
        assert batch[0].source == 2

    def test_accumulative_coalesce_sums(self):
        queue = make_queue(algorithm=PageRank())
        work = RoundWork()
        queue.insert(Event(2, 0.5), work)
        queue.insert(Event(2, 0.25), work)
        [batch] = queue.drain_round(work)
        assert batch[0].payload == pytest.approx(0.75)

    def test_request_flag_survives_coalescing(self):
        queue = make_queue()
        work = RoundWork()
        queue.insert(Event(5, 3.0, int(EventFlags.REQUEST)), work)
        queue.insert(Event(5, 1.0, 0), work)
        [batch] = queue.drain_round(work)
        assert batch[0].is_request
        assert batch[0].payload == 1.0

    def test_one_event_per_vertex(self):
        queue = make_queue()
        work = RoundWork()
        for payload in (5.0, 4.0, 3.0):
            queue.insert(Event(7, payload), work)
        assert queue.occupancy() == 1

    def test_mixing_delete_and_regular_rejected(self):
        queue = make_queue()
        work = RoundWork()
        queue.insert(Event(5, 3.0), work)
        with pytest.raises(QueueError):
            queue.insert(Event(5, 3.0, int(EventFlags.DELETE)), work)


class TestDeleteCoalescing:
    def test_base_keeps_single_tag(self):
        queue = make_queue(policy=DeletePolicy.BASE)
        work = RoundWork()
        queue.insert(Event(5, 0.0, 1, 1), work)
        queue.insert(Event(5, 0.0, 1, 2), work)
        [batch] = queue.drain_round(work)
        assert len(batch) == 1

    def test_vap_keeps_most_progressed(self):
        queue = make_queue(policy=DeletePolicy.VAP)
        work = RoundWork()
        queue.insert(Event(5, 9.0, 1, 1), work)
        queue.insert(Event(5, 4.0, 1, 2), work)
        [batch] = queue.drain_round(work)
        assert batch[0].payload == 4.0  # most progressed for SSSP

    def test_dap_overflow_preserves_all(self):
        queue = make_queue(policy=DeletePolicy.DAP)
        queue.set_delete_coalescing(False)
        work = RoundWork()
        queue.insert(Event(5, 9.0, 1, 1), work)
        queue.insert(Event(5, 4.0, 1, 2), work)
        queue.insert(Event(5, 2.0, 1, 3), work)
        [batch] = queue.drain_round(work)
        assert len(batch) == 3
        assert {e.source for e in batch} == {1, 2, 3}

    def test_dap_overflow_counts_spill(self):
        queue = make_queue(policy=DeletePolicy.DAP)
        queue.set_delete_coalescing(False)
        work = RoundWork()
        queue.insert(Event(5, 9.0, 1, 1), work)
        queue.insert(Event(5, 4.0, 1, 2), work)
        assert work.spill_bytes == 2 * queue.event_bytes

    def test_reenabling_coalescing(self):
        queue = make_queue(policy=DeletePolicy.DAP)
        queue.set_delete_coalescing(False)
        queue.set_delete_coalescing(True)
        work = RoundWork()
        queue.insert(Event(5, 9.0, 1, 1), work)
        queue.insert(Event(5, 4.0, 1, 2), work)
        [batch] = queue.drain_round(work)
        assert len(batch) == 1


class TestDraining:
    def test_drain_sorted_by_vertex(self):
        queue = make_queue()
        work = RoundWork()
        for v in (33, 2, 17, 9):
            queue.insert(Event(v, 1.0), work)
        events = [e.target for b in queue.drain_round(work) for e in b]
        assert events == sorted(events)

    def test_row_batching(self):
        config = AcceleratorConfig()
        queue = make_queue()
        work = RoundWork()
        row = config.queue_row_vertices
        queue.insert(Event(0, 1.0), work)
        queue.insert(Event(1, 1.0), work)
        queue.insert(Event(row, 1.0), work)  # next row
        batches = queue.drain_round(work)
        assert len(batches) == 2
        assert [e.target for e in batches[0]] == [0, 1]

    def test_drain_empty(self):
        queue = make_queue()
        assert queue.drain_round(RoundWork()) == []

    def test_generated_events_go_to_next_round(self):
        queue = make_queue()
        work = RoundWork()
        queue.insert(Event(1, 1.0), work)
        queue.drain_round(work)
        queue.insert(Event(2, 1.0), work)
        assert queue.pending()

    def test_peak_occupancy_tracked(self):
        queue = make_queue()
        work = RoundWork()
        for v in range(10):
            queue.insert(Event(v, 1.0), work)
        queue.drain_round(work)
        assert queue.peak_occupancy == 10
        assert queue.occupancy() == 0


class TestSlices:
    def test_cross_slice_spill_accounted(self):
        slice_of = np.array([0] * 32 + [1] * 32)
        queue = make_queue(slice_of=slice_of)
        work = RoundWork()
        queue.insert(Event(0, 1.0), work)  # active slice
        queue.insert(Event(40, 1.0), work)  # inactive slice: off-chip write
        assert work.spill_bytes == queue.event_bytes
        # The matching read-back is charged when the slice activates.
        queue.drain_round(work)
        assert queue.activate_next_slice(work)
        assert work.spill_bytes == 2 * queue.event_bytes
        # Re-activating later does not double-charge.
        readback = RoundWork()
        queue.activate_next_slice(readback)
        assert readback.spill_bytes == 0

    def test_drain_only_active_slice(self):
        slice_of = np.array([0] * 32 + [1] * 32)
        queue = make_queue(slice_of=slice_of)
        work = RoundWork()
        queue.insert(Event(0, 1.0), work)
        queue.insert(Event(40, 1.0), work)
        drained = [e.target for b in queue.drain_round(work) for e in b]
        assert drained == [0]
        assert queue.pending()

    def test_activate_next_slice(self):
        slice_of = np.array([0] * 32 + [1] * 32)
        queue = make_queue(slice_of=slice_of)
        work = RoundWork()
        queue.insert(Event(40, 1.0), work)
        assert queue.activate_next_slice()
        assert queue.active_slice == 1
        drained = [e.target for b in queue.drain_round(work) for e in b]
        assert drained == [40]

    def test_activate_when_all_empty(self):
        queue = make_queue()
        assert not queue.activate_next_slice()

    def test_short_slice_map_rejected(self):
        with pytest.raises(ValueError):
            make_queue(num_vertices=64, slice_of=np.zeros(10, dtype=np.int64))

    def test_seed_bulk_insert(self):
        queue = make_queue()
        work = RoundWork()
        queue.seed([Event(v, 1.0) for v in range(5)], work)
        assert queue.occupancy() == 5


def make_vector_queue(
    policy=DeletePolicy.DAP, algorithm=None, num_vertices=64, slice_of=None
):
    return VectorQueue(
        algorithm or SSSP(),
        AcceleratorConfig(),
        policy,
        num_vertices=num_vertices,
        slice_of=slice_of,
    )


class TestVectorQueue:
    """The SoA queue must mirror CoalescingQueue behavior exactly."""

    def test_rejects_algorithm_without_ufunc(self):
        class Hookless(SSSP):
            reduce_ufunc = None

        with pytest.raises(QueueError):
            make_vector_queue(algorithm=Hookless())

    def test_batch_coalesce_keeps_dominant_source(self):
        queue = make_vector_queue()
        work = RoundWork()
        queue.insert_batch(
            EventBatch.from_arrays(
                np.array([5, 5, 5]),
                np.array([7.0, 3.0, 4.0]),
                sources=np.array([1, 2, 3]),
            ),
            work,
        )
        batch, _ = queue.drain_round(work)
        assert batch.payloads.tolist() == [3.0]
        assert batch.sources.tolist() == [2]  # first event attaining the min
        assert queue.total_coalesces == 2

    def test_accumulative_batch_sums_in_order(self):
        queue = make_vector_queue(algorithm=PageRank())
        work = RoundWork()
        queue.insert_batch(
            EventBatch.from_arrays(np.array([2, 2, 2]), np.array([0.5, 0.25, 0.125])),
            work,
        )
        batch, _ = queue.drain_round(work)
        assert batch.payloads[0] == pytest.approx(0.875)

    def test_request_flag_survives_batch_coalescing(self):
        queue = make_vector_queue()
        work = RoundWork()
        queue.insert(Event(5, 3.0, int(EventFlags.REQUEST)), work)
        queue.insert(Event(5, 1.0, 0), work)
        batch, _ = queue.drain_round(work)
        assert batch.flags[0] & int(EventFlags.REQUEST)
        assert batch.payloads[0] == 1.0

    def test_mixing_delete_and_regular_rejected(self):
        queue = make_vector_queue()
        work = RoundWork()
        queue.insert(Event(5, 3.0), work)
        with pytest.raises(QueueError):
            queue.insert(Event(5, 3.0, int(EventFlags.DELETE)), work)

    def test_vap_keeps_most_progressed_delete(self):
        queue = make_vector_queue(policy=DeletePolicy.VAP)
        work = RoundWork()
        queue.insert(Event(5, 9.0, 1, 1), work)
        queue.insert(Event(5, 4.0, 1, 2), work)
        batch, _ = queue.drain_round(work)
        assert len(batch) == 1
        assert batch.payloads[0] == 4.0

    def test_dap_overflow_preserves_all_and_counts_spill(self):
        queue = make_vector_queue(policy=DeletePolicy.DAP)
        queue.set_delete_coalescing(False)
        work = RoundWork()
        queue.insert_batch(
            EventBatch.from_arrays(
                np.array([5, 5, 5]),
                np.array([9.0, 4.0, 2.0]),
                flags=np.array([1, 1, 1]),
                sources=np.array([1, 2, 3]),
            ),
            work,
        )
        assert work.spill_bytes == 2 * 2 * queue.event_bytes
        batch, _ = queue.drain_round(work)
        assert len(batch) == 3
        assert set(batch.sources.tolist()) == {1, 2, 3}
        # Coalesced cell drains first, overflow in arrival order.
        assert batch.payloads.tolist() == [9.0, 4.0, 2.0]

    def test_drain_sorted_with_row_starts(self):
        config = AcceleratorConfig()
        queue = make_vector_queue()
        work = RoundWork()
        row = config.queue_row_vertices
        queue.insert_batch(
            EventBatch.from_arrays(
                np.array([row, 1, 0]), np.array([1.0, 1.0, 1.0])
            ),
            work,
        )
        batch, row_starts = queue.drain_round(work)
        assert batch.targets.tolist() == [0, 1, row]
        assert row_starts.tolist() == [0, 2]
        assert queue.occupancy() == 0

    def test_max_rows_partial_drain(self):
        config = AcceleratorConfig()
        queue = make_vector_queue()
        work = RoundWork()
        row = config.queue_row_vertices
        queue.insert_batch(
            EventBatch.from_arrays(
                np.array([0, row, 3 * row]), np.array([1.0, 1.0, 1.0])
            ),
            work,
        )
        batch, row_starts = queue.drain_round(work, max_rows=2)
        assert batch.targets.tolist() == [0, row]
        assert queue.pending()
        batch, _ = queue.drain_round(work)
        assert batch.targets.tolist() == [3 * row]

    def test_cross_slice_spill_accounted(self):
        slice_of = np.array([0] * 32 + [1] * 32)
        queue = make_vector_queue(slice_of=slice_of)
        work = RoundWork()
        queue.insert(Event(0, 1.0), work)
        queue.insert(Event(40, 1.0), work)
        assert work.spill_bytes == queue.event_bytes
        queue.drain_round(work)
        assert queue.activate_next_slice(work)
        assert work.spill_bytes == 2 * queue.event_bytes
        readback = RoundWork()
        queue.activate_next_slice(readback)
        assert readback.spill_bytes == 0

    def test_drain_only_active_slice(self):
        slice_of = np.array([0] * 32 + [1] * 32)
        queue = make_vector_queue(slice_of=slice_of)
        work = RoundWork()
        queue.insert_batch(
            EventBatch.from_arrays(np.array([0, 40]), np.array([1.0, 1.0])), work
        )
        batch, _ = queue.drain_round(work)
        assert batch.targets.tolist() == [0]
        assert queue.pending()
        assert queue.activate_next_slice(work)
        batch, _ = queue.drain_round(work)
        assert batch.targets.tolist() == [40]

    def test_grows_for_out_of_range_target(self):
        queue = make_vector_queue(num_vertices=4)
        work = RoundWork()
        queue.insert(Event(9, 2.0), work)
        batch, _ = queue.drain_round(work)
        assert batch.targets.tolist() == [9]

    def test_lifetime_stats_shape(self):
        queue = make_vector_queue()
        work = RoundWork()
        queue.insert_batch(
            EventBatch.from_arrays(np.array([1, 1, 2]), np.array([3.0, 2.0, 1.0])),
            work,
        )
        queue.drain_round(work)
        stats = queue.lifetime_stats()
        assert stats["total_inserts"] == 3
        assert stats["total_coalesces"] == 1
        assert stats["peak_occupancy"] == 2
        assert stats["slice_switches"] == 0
