"""Tests for the EXPERIMENTS.md generator (synthetic result fixtures)."""

import pytest

from repro.experiments import energy as energy_mod
from repro.experiments import experiments_doc
from repro.experiments.fig9 import AccessRatio
from repro.experiments.fig10 import ResetCount
from repro.experiments.fig11 import UtilizationPair
from repro.experiments.fig12 import OptimizationPoint
from repro.experiments.fig13 import BatchSizeCurve
from repro.experiments.fig14 import CompositionCurve
from repro.experiments.table3 import Table3Row


@pytest.fixture
def fake_results():
    t3 = Table3Row(
        algorithm="sssp",
        comparator="kickstarter",
        jet_ms={"WK": 0.01},
        speedup_gp={"WK": 12.0},
        speedup_sw={"WK": 9.0},
    )
    jet13 = BatchSizeCurve("sssp", "jetstream", points={80: 1.0, 10: 4.0})
    ks13 = BatchSizeCurve("sssp", "kickstarter", points={80: 0.05, 10: 0.06})
    jet14 = CompositionCurve("sssp", "jetstream", points={1.0: 0.3, 0.5: 1.0, 0.0: 1.3})
    ks14 = CompositionCurve("sssp", "kickstarter", points={1.0: 4.0, 0.5: 4.1, 0.0: 3.0})
    table4_rows = [
        {
            "component": name,
            "count": 1,
            "static_mw": 1.0,
            "static_delta": 0.01,
            "dynamic_mw": 1.0,
            "dynamic_delta": -0.06,
            "total_mw": 8926.0 if name == "Total" else 10.0,
            "total_delta": 0.01,
            "area_mm2": 199.0 if name == "Total" else 1.0,
            "area_delta": 0.03,
        }
        for name in ["Queue", "Scratchpad", "Network", "Proc. Logic", "Total"]
    ]
    return {
        "table1": ([], "T1"),
        "table2": ([], "T2"),
        "table3": ([t3], "T3"),
        "fig9": ([AccessRatio("sssp", "WK", 0.1, 0.05)], "F9"),
        "fig10": ([ResetCount("sssp", "WK", 5, 9)], "F10"),
        "fig11": ([UtilizationPair("sssp", "WK", 0.3, 0.8)], "F11"),
        "fig12": (
            [OptimizationPoint("sssp", "LJ", {"base": 0.5, "vap": 10.0, "dap": 12.0})],
            "F12",
        ),
        "fig13": ([jet13, ks13], "F13"),
        "fig14": ([jet14, ks14], "F14"),
        "table4": (table4_rows, "T4"),
        "energy": (
            [energy_mod.EnergyPoint("sssp", "WK", 0.1, 1.3)],
            "EN",
        ),
    }


class TestWriteDoc:
    def test_writes_file(self, fake_results, tmp_path):
        path = tmp_path / "EXPERIMENTS.md"
        text = experiments_doc.write_doc(fake_results, str(path))
        assert path.exists()
        assert path.read_text() == text

    def test_every_experiment_present(self, fake_results, tmp_path):
        text = experiments_doc.write_doc(
            fake_results, str(tmp_path / "EXPERIMENTS.md")
        )
        for heading in (
            "Table 1",
            "Table 2",
            "Table 3",
            "Fig. 9",
            "Fig. 10",
            "Fig. 11",
            "Fig. 12",
            "Fig. 13",
            "Fig. 14",
            "Table 4",
            "Energy",
        ):
            assert heading in text

    def test_paper_numbers_cited(self, fake_results, tmp_path):
        text = experiments_doc.write_doc(
            fake_results, str(tmp_path / "EXPERIMENTS.md")
        )
        assert "paper gmean" in text
        assert "13x average" in text

    def test_renderings_embedded(self, fake_results, tmp_path):
        text = experiments_doc.write_doc(
            fake_results, str(tmp_path / "EXPERIMENTS.md")
        )
        for marker in ("T3", "F13", "EN"):
            assert marker in text

    def test_measured_values_interpolated(self, fake_results, tmp_path):
        text = experiments_doc.write_doc(
            fake_results, str(tmp_path / "EXPERIMENTS.md")
        )
        assert "12.0x" in text  # table 3 measured gmean
        assert "13.0x" in text or "13x" in text  # energy gain 1.3/0.1
