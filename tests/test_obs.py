"""Tests for the run-trace observability layer (repro.obs).

The central contract: a trace's round spans carry the complete per-round
work vectors, so the recorded :class:`RunMetrics` can be rebuilt from the
trace alone and must match the in-process metrics *exactly* — on every
engine substrate (scalar, vectorized, sharded).
"""

from __future__ import annotations

import io
import json

import pytest

from repro.algorithms import make_algorithm
from repro.core.engine import GraphPulseEngine
from repro.core.metrics import RunMetrics
from repro.core.streaming import JetStreamEngine
from repro.host import Accelerator
from repro.obs import (
    WORK_FIELDS,
    JsonlSink,
    MemorySink,
    ProgressSink,
    TraceData,
    TraceFormatError,
    Tracer,
    correlate,
    read_trace,
    render_correlation,
    summarize,
    validate_trace,
    work_attrs,
)
from repro.obs.tracer import NULL_TRACER
from repro.streams import StreamGenerator

from conftest import make_graph_for


def make_traced_engine(engine_mode: str, algorithm_name: str = "sssp", **kwargs):
    memory = MemorySink()
    tracer = Tracer([memory])
    algorithm = make_algorithm(algorithm_name, source=0)
    graph = make_graph_for(algorithm, n=40, m=160, seed=5)
    engine = JetStreamEngine(
        graph, algorithm, engine=engine_mode, tracer=tracer, **kwargs
    )
    return engine, tracer, memory


def run_traced_stream(engine, seed: int = 6, batches: int = 2, size: int = 10):
    stream = StreamGenerator(engine.graph, seed=seed)
    results = [engine.initial_compute()]
    for _ in range(batches):
        results.append(engine.apply_batch(stream.next_batch(size)))
    return results


# ----------------------------------------------------------------------
# Tracer unit behaviour
# ----------------------------------------------------------------------
class TestTracer:
    def test_nesting_assigns_parents(self):
        memory = MemorySink()
        tracer = Tracer([memory])
        run = tracer.start("run", "r")
        phase = tracer.start("phase", "p")
        rnd = tracer.start("round")
        tracer.end(rnd, events_processed=3)
        tracer.end(phase)
        tracer.end(run)
        spans = {s.span_id: s for s in memory.spans}
        assert spans[rnd.span_id].parent_id == phase.span_id
        assert spans[phase.span_id].parent_id == run.span_id
        assert spans[run.span_id].parent_id is None
        assert spans[rnd.span_id].attrs["events_processed"] == 3

    def test_spans_emitted_in_end_order(self):
        memory = MemorySink()
        tracer = Tracer([memory])
        with tracer.span("run", "r"):
            with tracer.span("phase", "p"):
                pass
        assert [s.kind for s in memory.spans] == ["phase", "run"]
        assert all(s.t_end >= s.t_start for s in memory.spans)

    def test_end_closes_forgotten_children(self):
        memory = MemorySink()
        tracer = Tracer([memory])
        run = tracer.start("run", "r")
        tracer.start("phase", "orphan")
        tracer.end(run)
        assert {s.name for s in memory.spans} == {"r", "orphan"}
        assert tracer.current() is None

    def test_emit_bypasses_stack(self):
        memory = MemorySink()
        tracer = Tracer([memory])
        rnd = tracer.start("round")
        tracer.emit("engine", "engine-0", 1.0, 2.0, parent=rnd, engine=0)
        assert tracer.current() is rnd
        engine_span = memory.find("engine")[0]
        assert engine_span.parent_id == rnd.span_id
        assert engine_span.dur_s == pytest.approx(1.0)
        tracer.end(rnd)

    def test_event_attaches_to_current_span(self):
        memory = MemorySink()
        tracer = Tracer([memory])
        with tracer.span("run", "r") as run:
            tracer.event("transfer", direction="results_read", bytes=64)
        assert memory.events[0].parent_id == run.span_id
        assert memory.events[0].attrs["bytes"] == 64

    def test_close_flushes_open_spans(self):
        memory = MemorySink()
        tracer = Tracer([memory])
        tracer.start("run", "r")
        tracer.start("phase", "p")
        tracer.close()
        assert len(memory.spans) == 2

    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.start("round") is None
        with NULL_TRACER.span("run", "x") as s:
            assert s is None
        with NULL_TRACER.round(None) as r:
            assert r is None
        NULL_TRACER.event("transfer")
        NULL_TRACER.close()

    def test_engines_default_to_null_tracer(self):
        algorithm = make_algorithm("sssp", source=0)
        graph = make_graph_for(algorithm)
        engine = JetStreamEngine(graph, algorithm)
        assert engine.tracer is NULL_TRACER
        assert engine.core.tracer.enabled is False


# ----------------------------------------------------------------------
# Trace <-> RunMetrics exact-match parity, per substrate
# ----------------------------------------------------------------------
SUBSTRATES = [
    ("scalar", {}),
    ("vectorized", {}),
    ("sharded", {"num_engines": 4}),
]


def assert_trace_matches_metrics(trace: TraceData, results) -> None:
    """Every run span's rounds/phases must equal the recorded metrics."""
    runs = trace.runs()
    assert len(runs) == len(results)
    for run, result in zip(runs, results):
        phases = trace.children_of(run["id"], "phase")
        assert [p["name"] for p in phases] == [
            p.name for p in result.metrics.phases
        ]
        for record, stats in zip(phases, result.metrics.phases):
            attrs = record["attrs"]
            assert attrs["rounds"] == stats.num_rounds
            for name in WORK_FIELDS:
                assert attrs[name] == getattr(stats.total, name), (
                    record["name"],
                    name,
                )
            rounds = trace.children_of(record["id"], "round")
            assert len(rounds) == stats.num_rounds
            for round_record, work in zip(rounds, stats.rounds):
                for name, value in work_attrs(work).items():
                    assert round_record["attrs"][name] == value
        from repro.obs import rebuild_run_metrics

        rebuilt = rebuild_run_metrics(trace, run)
        assert rebuilt.to_rows() == result.metrics.to_rows()


class TestTraceMetricsParity:
    @pytest.mark.parametrize("engine_mode,kwargs", SUBSTRATES)
    def test_selective_stream(self, engine_mode, kwargs):
        engine, tracer, memory = make_traced_engine(engine_mode, "sssp", **kwargs)
        results = run_traced_stream(engine)
        tracer.close()
        trace = TraceData.from_spans(memory.spans, memory.events)
        assert_trace_matches_metrics(trace, results)

    @pytest.mark.parametrize("engine_mode,kwargs", SUBSTRATES)
    def test_accumulative_stream(self, engine_mode, kwargs):
        engine, tracer, memory = make_traced_engine(
            engine_mode, "pagerank", **kwargs
        )
        results = run_traced_stream(engine)
        tracer.close()
        trace = TraceData.from_spans(memory.spans, memory.events)
        assert_trace_matches_metrics(trace, results)

    def test_two_phase_accumulative_stream(self):
        engine, tracer, memory = make_traced_engine(
            "vectorized", "pagerank", two_phase_accumulative=True
        )
        results = run_traced_stream(engine)
        tracer.close()
        trace = TraceData.from_spans(memory.spans, memory.events)
        assert_trace_matches_metrics(trace, results)

    def test_static_compute_traced(self):
        memory = MemorySink()
        tracer = Tracer([memory])
        algorithm = make_algorithm("sssp", source=0)
        graph = make_graph_for(algorithm)
        result = GraphPulseEngine(algorithm, tracer=tracer).compute(graph.snapshot())
        tracer.close()
        trace = TraceData.from_spans(memory.spans)
        assert_trace_matches_metrics(trace, [result])

    def test_sharded_rounds_carry_engine_spans_and_noc(self):
        engine, tracer, memory = make_traced_engine("sharded", "sssp", num_engines=4)
        run_traced_stream(engine)
        tracer.close()
        trace = TraceData.from_spans(memory.spans)
        engine_spans = [s for s in trace.spans if s["kind"] == "engine"]
        assert engine_spans, "sharded rounds must emit per-engine spans"
        round_ids = {s["id"] for s in trace.spans if s["kind"] == "round"}
        for span in engine_spans:
            assert span["parent"] in round_ids
            for name in WORK_FIELDS:
                assert name in span["attrs"]
        # Engine-loop round spans carry NoC deltas and occupancy samples.
        sampled = [
            s
            for s in trace.spans
            if s["kind"] == "round" and "noc_flits" in s["attrs"]
        ]
        assert sampled
        assert all("occupancy_start" in s["attrs"] for s in sampled)


# ----------------------------------------------------------------------
# JSONL round trip + validation
# ----------------------------------------------------------------------
class TestJsonlTrace:
    def trace_file(self, tmp_path):
        path = tmp_path / "run.jsonl"
        memory = MemorySink()
        tracer = Tracer([JsonlSink(str(path)), memory])
        algorithm = make_algorithm("sssp", source=0)
        graph = make_graph_for(algorithm, n=40, m=160, seed=5)
        engine = JetStreamEngine(graph, algorithm, tracer=tracer)
        results = run_traced_stream(engine)
        tracer.close()
        return path, memory, results

    def test_round_trip(self, tmp_path):
        path, memory, results = self.trace_file(tmp_path)
        assert validate_trace(path) == []
        trace = read_trace(path)
        assert trace.header["format"] == "repro-trace"
        assert trace.header["version"] == 1
        assert len(trace.spans) == len(memory.spans)
        assert len(trace.events) == len(memory.events)
        assert_trace_matches_metrics(trace, results)

    def test_children_written_before_parents(self, tmp_path):
        path, _, _ = self.trace_file(tmp_path)
        # Spans are written at end time, so every child record precedes its
        # parent's record in the file.
        trace = read_trace(path)
        order = [s["id"] for s in trace.spans]
        for run in trace.runs():
            for child in trace.children_of(run["id"]):
                assert order.index(child["id"]) < order.index(run["id"])

    def test_validate_rejects_missing_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type":"span","kind":"run"}\n')
        errors = validate_trace(path)
        assert any("header" in e for e in errors)

    def test_validate_rejects_bad_version(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type":"header","format":"repro-trace","version":99}\n')
        assert any("version" in e for e in validate_trace(path))

    def test_validate_rejects_unknown_kind(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"type":"header","format":"repro-trace","version":1}\n'
            '{"type":"span","kind":"galaxy","name":"x","id":1,"parent":null,'
            '"t_start":0.0,"t_end":1.0,"dur_s":1.0,"attrs":{}}\n'
        )
        assert any("kind" in e for e in validate_trace(path))

    def test_validate_requires_round_work_vector(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"type":"header","format":"repro-trace","version":1}\n'
            '{"type":"span","kind":"round","name":"round","id":1,"parent":null,'
            '"t_start":0.0,"t_end":1.0,"dur_s":1.0,"attrs":{}}\n'
        )
        errors = validate_trace(path)
        assert any("events_processed" in e for e in errors)

    def test_validate_rejects_dangling_parent(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"type":"header","format":"repro-trace","version":1}\n'
            '{"type":"span","kind":"run","name":"r","id":1,"parent":77,'
            '"t_start":0.0,"t_end":1.0,"dur_s":1.0,"attrs":{}}\n'
        )
        assert any("parent span 77" in e for e in validate_trace(path))

    def test_validate_rejects_garbage_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"type":"header","format":"repro-trace","version":1}\n{oops\n'
        )
        assert any("not valid JSON" in e for e in validate_trace(path))

    def test_read_trace_raises_on_invalid(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{}\n")
        with pytest.raises(TraceFormatError):
            read_trace(path)


# ----------------------------------------------------------------------
# Correlation (trace wall-clock vs modeled cycles)
# ----------------------------------------------------------------------
class TestCorrelation:
    def traced_run(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tracer = Tracer([JsonlSink(str(path))])
        algorithm = make_algorithm("sssp", source=0)
        graph = make_graph_for(algorithm, n=40, m=160, seed=5)
        engine = JetStreamEngine(graph, algorithm, tracer=tracer)
        results = run_traced_stream(engine)
        tracer.close()
        return path, results

    def test_rows_join_model_and_wall_clock(self, tmp_path):
        path, results = self.traced_run(tmp_path)
        rows = correlate(read_trace(path))
        # initial run has 1 phase; each selective batch has 2.
        assert len(rows) == 1 + 2 * (len(results) - 1)
        for row in rows:
            assert row.wall_s >= 0.0
            assert row.modeled_cycles > 0.0
            assert row.cycles_per_wall_s >= 0.0
        names = {row.name for row in rows}
        assert "initial" in names and "reevaluation" in names

    def test_modeled_cycles_match_in_process_model(self, tmp_path):
        from repro.sim.timing import AcceleratorTimingModel

        path, results = self.traced_run(tmp_path)
        rows = correlate(read_trace(path))
        model = AcceleratorTimingModel()
        # initial run: no stream records; batches: generator batches of 10.
        expected_reports = [model.run_time(results[0].metrics, stream_records=0)]
        for result in results[1:]:
            expected_reports.append(
                model.run_time(result.metrics, stream_records=10)
            )
        got = [row.modeled_cycles for row in rows]
        want = [
            phase.total_cycles
            for report in expected_reports
            for phase in report.phases
        ]
        assert got == pytest.approx(want)

    def test_render_and_summarize(self, tmp_path):
        path, _ = self.traced_run(tmp_path)
        table = render_correlation(correlate(read_trace(path)))
        assert "Mcyc/s" in table and "total" in table
        assert summarize(path) == table

    def test_rebuild_detects_tampered_aggregate(self, tmp_path):
        path, _ = self.traced_run(tmp_path)
        lines = path.read_text().splitlines()
        for i, line in enumerate(lines):
            record = json.loads(line)
            if record.get("kind") == "phase":
                record["attrs"]["events_processed"] += 1
                lines[i] = json.dumps(record)
                break
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceFormatError):
            correlate(read_trace(path))

    def test_empty_trace_renders_placeholder(self):
        assert "empty trace" in render_correlation([])


# ----------------------------------------------------------------------
# Host transfer events + progress sink
# ----------------------------------------------------------------------
class TestHostTracing:
    def test_transfer_events_match_transfer_stats(self):
        memory = MemorySink()
        tracer = Tracer([memory])
        accel = Accelerator(tracer=tracer)
        session = accel.load_graph(
            [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)], num_vertices=4
        )
        session.configure("sssp", source=0)
        session.run()
        session.push_updates(insertions=[(0, 3, 2.0)])
        session.run()
        session.read_results()
        tracer.close()
        transfers = [e for e in memory.events if e.name == "transfer"]
        assert transfers
        total = sum(e.attrs["bytes"] for e in transfers)
        assert total == session.transfer_stats().total
        directions = {e.attrs["direction"] for e in transfers}
        assert directions == {"graph_uploads", "update_records", "results_read"}

    def test_progress_sink_output(self):
        stream = io.StringIO()
        tracer = Tracer([ProgressSink(stream)])
        algorithm = make_algorithm("sssp", source=0)
        graph = make_graph_for(algorithm, n=20, m=60, seed=2)
        engine = JetStreamEngine(graph, algorithm, tracer=tracer)
        engine.initial_compute()
        tracer.close()
        out = stream.getvalue()
        assert "run initial started" in out
        assert "phase initial done" in out


# ----------------------------------------------------------------------
# Overhead contract
# ----------------------------------------------------------------------
class TestOverheadContract:
    def test_disabled_tracer_emits_nothing(self):
        algorithm = make_algorithm("sssp", source=0)
        graph = make_graph_for(algorithm)
        engine = JetStreamEngine(graph, algorithm)  # NULL_TRACER default
        run_traced_stream(engine)
        assert engine.tracer is NULL_TRACER

    def test_traced_and_untraced_metrics_identical(self):
        """Instrumentation must not perturb the computation or counters."""
        algorithm = make_algorithm("sssp", source=0)
        graph_a = make_graph_for(algorithm, seed=9)
        graph_b = make_graph_for(algorithm, seed=9)
        plain = JetStreamEngine(graph_a, make_algorithm("sssp", source=0))
        traced = JetStreamEngine(
            graph_b,
            make_algorithm("sssp", source=0),
            tracer=Tracer([MemorySink()]),
        )
        plain_results = run_traced_stream(plain)
        traced_results = run_traced_stream(traced)
        for a, b in zip(plain_results, traced_results):
            assert a.states.tobytes() == b.states.tobytes()
            assert a.metrics.to_rows() == b.metrics.to_rows()


# ----------------------------------------------------------------------
# Context-manager lifecycles + exception-path flushing
# ----------------------------------------------------------------------
class TestContextManagers:
    def test_tracer_context_manager_closes_sinks(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Tracer([JsonlSink(str(path))]) as tracer:
            with tracer.span("run", "r"):
                pass
        # Leaving the block closed the sink: file flushed and complete.
        trace = read_trace(path)
        assert [s["kind"] for s in trace.spans] == ["run"]

    def test_jsonl_sink_context_manager_closes_file(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlSink(str(path)) as sink:
            tracer = Tracer([sink])
            with tracer.span("run", "r"):
                pass
            tracer.close()
        assert read_trace(path).spans

    def test_null_tracer_context_manager_is_inert(self):
        with NULL_TRACER as tracer:
            assert tracer is NULL_TRACER

    def test_engine_exception_still_flushes_partial_trace(self, tmp_path):
        """A crash mid-phase must leave a parseable partial trace behind."""
        path = tmp_path / "crash.jsonl"
        algorithm = make_algorithm("sssp", source=0)
        graph = make_graph_for(algorithm, n=40, m=160, seed=5)
        calls = {"n": 0}
        real = algorithm.propagate_arrays

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] > 2:
                raise RuntimeError("injected mid-phase failure")
            return real(*args, **kwargs)

        algorithm.propagate_arrays = flaky
        with pytest.raises(RuntimeError, match="injected"):
            with Tracer([JsonlSink(str(path))]) as tracer:
                engine = JetStreamEngine(
                    graph, algorithm, engine="vectorized", tracer=tracer
                )
                engine.initial_compute()
        # Forced-closed spans may lack the aggregate attrs validate_trace
        # demands, so assert raw parseability, not full validity.
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert records[0]["type"] == "header"
        kinds = {r.get("kind") for r in records if r["type"] == "span"}
        # Completed rounds were flushed, and close() drained the still-open
        # run/phase spans on the way out.
        assert "round" in kinds
        assert "run" in kinds


# ----------------------------------------------------------------------
# ProgressSink non-TTY fallback
# ----------------------------------------------------------------------
class TestProgressFallback:
    def run_rounds(self, sink, rounds: int):
        tracer = Tracer([sink])
        for i in range(rounds):
            span = tracer.start("round")
            tracer.end(span, events_processed=i + 1)
        tracer.close()

    def test_non_tty_emits_throttled_round_lines(self):
        stream = io.StringIO()  # isatty() is False
        self.run_rounds(ProgressSink(stream, fallback_every=2), rounds=5)
        out = stream.getvalue()
        assert "round 2:" in out and "round 4:" in out
        assert "round 1:" not in out and "round 3:" not in out
        assert "round 5:" not in out
        assert "\r" not in out

    def test_default_throttle_stays_quiet_on_short_phases(self):
        stream = io.StringIO()
        self.run_rounds(ProgressSink(stream), rounds=10)
        assert "round" not in stream.getvalue()

    def test_fallback_every_must_be_positive(self):
        with pytest.raises(ValueError):
            ProgressSink(io.StringIO(), fallback_every=0)


# ----------------------------------------------------------------------
# Sharded traces through the JSONL file (offline round trip)
# ----------------------------------------------------------------------
class TestShardedJsonlRoundTrip:
    def sharded_trace_file(self, tmp_path):
        path = tmp_path / "sharded.jsonl"
        tracer = Tracer([JsonlSink(str(path))])
        algorithm = make_algorithm("sssp", source=0)
        graph = make_graph_for(algorithm, n=40, m=160, seed=5)
        engine = JetStreamEngine(
            graph, algorithm, engine="sharded", num_engines=4, tracer=tracer
        )
        results = run_traced_stream(engine)
        tracer.close()
        return path, results

    def test_engine_spans_and_noc_survive_the_file(self, tmp_path):
        path, _ = self.sharded_trace_file(tmp_path)
        assert validate_trace(path) == []
        trace = read_trace(path)
        engine_spans = [s for s in trace.spans if s["kind"] == "engine"]
        assert engine_spans
        names = {s["name"] for s in engine_spans}
        assert names == {f"engine-{i}" for i in range(4)}
        for span in engine_spans:
            for field in WORK_FIELDS:
                assert field in span["attrs"]
        sampled = [
            s
            for s in trace.spans
            if s["kind"] == "round" and "noc_flits" in s["attrs"]
        ]
        assert sampled

    def test_rebuild_and_correlate_from_sharded_file(self, tmp_path):
        path, results = self.sharded_trace_file(tmp_path)
        trace = read_trace(path)
        assert_trace_matches_metrics(trace, results)
        from repro.obs import rebuild_run_metrics

        rebuilt = rebuild_run_metrics(trace, trace.runs()[0])
        noc = rebuilt.noc_summary()
        for key in ("events_local", "events_remote", "flits"):
            assert isinstance(noc[key], int)
        rows = correlate(trace)
        assert rows
        assert all(row.wall_s >= 0.0 for row in rows)
        assert all(row.modeled_cycles > 0.0 for row in rows)
