"""Smoke tests for the per-figure experiment modules on minimal grids.

Full grids run in ``pytest benchmarks/``; here each module is exercised on
the smallest stand-in with the smallest algorithm set to validate plumbing
and the headline shape.
"""

import pytest

from repro.core.policies import DeletePolicy
from repro.experiments import fig9, fig10, fig11, fig12, fig13, fig14, table3
from repro.experiments.harness import clear_cache


@pytest.fixture(scope="module", autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestTable3:
    def test_one_row(self):
        rows = table3.run(graphs=["WK"], algorithms=["sssp"])
        assert len(rows) == 1
        row = rows[0]
        assert row.comparator == "kickstarter"
        assert row.jet_ms["WK"] > 0
        assert row.speedup_gp["WK"] > 1.0

    def test_render_contains_gmean(self):
        rows = table3.run(graphs=["WK"], algorithms=["sssp"])
        assert "GMean" in table3.render(rows)

    def test_paper_gmeans_table_complete(self):
        for algo, _ in table3.ALGORITHMS:
            assert (algo, "graphpulse") in table3.PAPER_GMEANS
            assert (algo, "software") in table3.PAPER_GMEANS


class TestFig9:
    def test_ratios_below_one(self):
        ratios = fig9.run(graphs=["WK"], algorithms=["sssp"])
        assert len(ratios) == 1
        assert 0 < ratios[0].vertex_ratio < 1.0
        assert 0 < ratios[0].edge_ratio < 1.0

    def test_render(self):
        ratios = fig9.run(graphs=["WK"], algorithms=["sssp"])
        assert "Vertex access ratio" in fig9.render(ratios)


class TestFig10:
    def test_reset_counts_comparable(self):
        """Per-point, DAP may reset a *few* more than KickStarter (KS
        re-approximates before propagating its tag, stopping some cascades
        one hop earlier); the paper's claim — and the bench's aggregate
        assertion — is that DAP's sets are smaller overall, dramatically so
        on label plateaus (CC)."""
        counts = fig10.run(graphs=["WK"], algorithms=["bfs"])
        assert counts[0].jetstream_resets <= counts[0].kickstarter_resets * 1.3 + 5

    def test_cc_gap_dramatic(self):
        counts = fig10.run(graphs=["WK"], algorithms=["cc"])
        assert counts[0].jetstream_resets * 10 < counts[0].kickstarter_resets


class TestFig11:
    def test_utilization_pair(self):
        pairs = fig11.run(graphs=["WK"], algorithms=["sssp"])
        assert 0 < pairs[0].jetstream <= 1.0
        assert pairs[0].jetstream < pairs[0].graphpulse


class TestFig12:
    def test_policy_ordering(self):
        points = fig12.run(graphs=["LJ"], algorithms=["bfs"])
        speedups = points[0].speedups
        assert speedups["dap"] >= speedups["base"]
        assert speedups["dap"] >= speedups["vap"]


class TestFig13:
    def test_two_sizes(self):
        curves = fig13.run(batch_sizes=[40, 5], algorithms=["sssp"])
        jet = next(c for c in curves if c.system == "jetstream")
        assert jet.points[40] == pytest.approx(1.0)
        assert jet.points[5] > 1.0

    def test_default_batch_sizes_descend(self):
        sizes = fig13.default_batch_sizes()
        assert sizes == sorted(sizes, reverse=True)
        assert len(sizes) >= 3


class TestFig14:
    def test_deletions_cost_more(self):
        curves = fig14.run(algorithms=["sssp"], compositions=[1.0, 0.5, 0.0])
        jet = next(c for c in curves if c.system == "jetstream")
        assert jet.points[0.0] > jet.points[1.0]
        assert jet.points[0.5] == pytest.approx(1.0)
