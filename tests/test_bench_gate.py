"""Tests for the benchmark regression gate (repro.obs.bench_gate).

The gate has two teeth: relative throughput drops beyond the tolerance,
and *any* drift in the deterministic event counts. Canned collector
reports stand in for the real benchmark runs so the tests are fast and
machine-independent.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs import bench_gate
from repro.obs.bench_gate import (
    BenchGateError,
    compare_rows,
    default_baseline_path,
    flatten_engine,
    flatten_trace,
    render_table,
    run_gate,
)

ENGINE_REPORT = {
    "results": [
        {
            "graph": "rmat-2k",
            "algorithm": "sssp",
            "scalar": {"events_per_s": 1000.0, "events_processed": 500},
            "vectorized": {"events_per_s": 4000.0, "events_processed": 500},
        }
    ]
}

TRACE_REPORT = {
    "rows": [
        {"mode": "off", "events_per_s": 9000.0, "events": 700},
        {"mode": "metrics", "events_per_s": 8800.0, "events": 700},
    ]
}

STREAM_REPORT = {
    "results": [
        {
            "batch_size": 1,
            "incremental": {"batches_per_s": 600.0, "events_processed": 900},
            "full_rebuild": {"batches_per_s": 5.0, "events_processed": 900},
        }
    ]
}

SHARDED_REPORT = {
    "results": [
        {
            "graph": "rmat-2k",
            "algorithm": "sssp",
            "backend": "thread",
            "num_engines": 8,
            "events_per_s": 3000.0,
            "events_processed": 500,
        },
        {
            "graph": "rmat-2k",
            "algorithm": "sssp",
            "backend": "process",
            "num_engines": 8,
            "events_per_s": 2500.0,
            "events_processed": 500,
        },
    ]
}


LATENCY_REPORT = {
    "results": {
        "safe_insert": {"updates_per_s": 200000.0, "work_entries": 1200},
        "mixed": {"updates_per_s": 40000.0, "work_entries": 2600},
        "engine_batch1": {"updates_per_s": 700.0, "events_processed": 300},
    }
}


SERVE_REPORT = {
    "results": {
        "mixed": {
            "batches_per_s": 90.0,
            "records_applied": 5000,
            "reads_per_s": 1000.0,
            "reads_total": 1200,
        },
        "express": {"updates_per_s": 1200.0, "updates": 1000},
    }
}


COMMONGRAPH_REPORT = {
    "results": [
        {
            "graph": "WK",
            "algorithm": "sssp",
            "delete_fraction": 0.3,
            "gated": True,
            "dap": {"events_per_s": 50000.0, "events_processed": 66000},
            "commongraph": {"events_per_s": 90000.0, "events_processed": 16000},
            "ratio_events": 4.1,
            "states_identical": True,
        }
    ],
    "min_gated_ratio": 4.1,
}


def perturbed(report: dict, scale: float = 1.0, events_delta: int = 0) -> dict:
    """Copy a canned report with scaled throughput / shifted event counts."""
    out = json.loads(json.dumps(report))
    for entry in out.get("results", []):
        for mode in ("scalar", "vectorized"):
            if mode in entry:
                entry[mode]["events_per_s"] *= scale
                entry[mode]["events_processed"] += events_delta
        for mode in ("incremental", "full_rebuild"):
            if mode in entry:
                entry[mode]["batches_per_s"] *= scale
                entry[mode]["events_processed"] += events_delta
    for entry in out.get("results", []):
        if "backend" in entry:
            entry["events_per_s"] *= scale
            entry["events_processed"] += events_delta
        for mode in ("dap", "commongraph"):
            if mode in entry:
                entry[mode]["events_per_s"] *= scale
                entry[mode]["events_processed"] += events_delta
    for row in out.get("rows", []):
        row["events_per_s"] *= scale
        row["events"] += events_delta
    if isinstance(out.get("results"), dict):  # latency / serve report shapes
        for sample in out["results"].values():
            for rate in ("updates_per_s", "batches_per_s", "reads_per_s"):
                if rate in sample:
                    sample[rate] *= scale
            for field in (
                "work_entries",
                "events_processed",
                "records_applied",
                "reads_total",
                "updates",
            ):
                if field in sample:
                    sample[field] += events_delta
    return out


# ----------------------------------------------------------------------
# Flattening + comparison units
# ----------------------------------------------------------------------
class TestFlatten:
    def test_engine_rows(self):
        rows = flatten_engine(ENGINE_REPORT)
        assert {r["key"] for r in rows} == {
            "rmat-2k/sssp/scalar",
            "rmat-2k/sssp/vectorized",
        }
        assert all(r["suite"] == "engine" for r in rows)
        assert rows[0]["events"] == 500

    def test_trace_rows(self):
        rows = flatten_trace(TRACE_REPORT)
        assert [r["key"] for r in rows] == ["off", "metrics"]
        assert all(r["suite"] == "trace" for r in rows)

    def test_stream_rows(self):
        rows = bench_gate.flatten_stream(STREAM_REPORT)
        assert [r["key"] for r in rows] == [
            "batch1/incremental",
            "batch1/full_rebuild",
        ]
        assert all(r["suite"] == "stream" for r in rows)
        assert rows[0]["events_per_s"] == 600.0
        assert rows[0]["events"] == 900

    def test_sharded_rows(self):
        rows = bench_gate.flatten_sharded(SHARDED_REPORT)
        assert [r["key"] for r in rows] == [
            "rmat-2k/sssp/thread/e8",
            "rmat-2k/sssp/process/e8",
        ]
        assert all(r["suite"] == "sharded" for r in rows)
        assert rows[0]["events"] == 500

    def test_sharded_rows_from_combined_engine_report(self):
        # BENCH_engine.json carries the grid under a "sharded" key.
        combined = {"results": [], "sharded": SHARDED_REPORT}
        rows = bench_gate.flatten_sharded(combined)
        assert len(rows) == 2

    def test_serve_rows(self):
        rows = bench_gate.flatten_serve(SERVE_REPORT)
        assert [r["key"] for r in rows] == [
            "mixed_ingest",
            "mixed_read",
            "express",
        ]
        assert all(r["suite"] == "serve" for r in rows)
        # Events are the exact request totals (determinism column).
        assert [r["events"] for r in rows] == [5000, 1200, 1000]
        assert rows[0]["events_per_s"] == 90.0
        assert rows[1]["events_per_s"] == 1000.0

    def test_commongraph_rows(self):
        rows = bench_gate.flatten_commongraph(COMMONGRAPH_REPORT)
        assert [r["key"] for r in rows] == [
            "WK/sssp/del30/dap",
            "WK/sssp/del30/commongraph",
        ]
        assert all(r["suite"] == "commongraph" for r in rows)
        # Event counts are the determinism column for both policies.
        assert [r["events"] for r in rows] == [66000, 16000]
        assert rows[1]["events_per_s"] == 90000.0


class TestCompareRows:
    def rows(self, events_per_s: float, events: int = 100):
        return [
            {
                "suite": "trace",
                "key": "off",
                "events_per_s": events_per_s,
                "events": events,
            }
        ]

    def test_within_tolerance_is_ok(self):
        out = compare_rows(self.rows(95.0), self.rows(100.0), tolerance=0.10)
        assert out[0]["status"] == "ok"
        assert out[0]["delta"] == pytest.approx(-0.05)

    def test_drop_beyond_tolerance_regresses(self):
        out = compare_rows(self.rows(80.0), self.rows(100.0), tolerance=0.10)
        assert out[0]["status"] == "regression"
        assert "throughput" in out[0]["note"]

    def test_speedup_beyond_tolerance_is_improved(self):
        out = compare_rows(self.rows(150.0), self.rows(100.0), tolerance=0.10)
        assert out[0]["status"] == "improved"

    def test_event_count_drift_regresses_regardless_of_speed(self):
        out = compare_rows(
            self.rows(500.0, events=101), self.rows(100.0, events=100), 0.10
        )
        assert out[0]["status"] == "regression"
        assert "determinism" in out[0]["note"]

    def test_new_and_removed_rows(self):
        current = self.rows(100.0)
        baseline = [
            {
                "suite": "trace",
                "key": "jsonl",
                "events_per_s": 50.0,
                "events": 100,
            }
        ]
        out = compare_rows(current, baseline, tolerance=0.10)
        statuses = {c["key"]: c["status"] for c in out}
        assert statuses == {"off": "new", "jsonl": "removed"}

    def test_render_table_mentions_rows_and_notes(self):
        out = compare_rows(self.rows(80.0), self.rows(100.0), tolerance=0.10)
        table = render_table(out)
        assert "off" in table
        assert "regression" in table
        assert "tolerance" in table


# ----------------------------------------------------------------------
# run_gate with canned collectors
# ----------------------------------------------------------------------
class TestRunGate:
    def collectors(
        self,
        engine=None,
        trace=None,
        stream=None,
        sharded=None,
        latency=None,
        serve=None,
        commongraph=None,
    ):
        return {
            "engine": lambda quick: engine or ENGINE_REPORT,
            "trace": lambda quick: trace or TRACE_REPORT,
            "stream": lambda quick: stream or STREAM_REPORT,
            "sharded": lambda quick: sharded or SHARDED_REPORT,
            "latency": lambda quick: latency or LATENCY_REPORT,
            "serve": lambda quick: serve or SERVE_REPORT,
            "commongraph": lambda quick: commongraph or COMMONGRAPH_REPORT,
        }

    def baselines(
        self,
        tmp_path: Path,
        engine=None,
        trace=None,
        stream=None,
        sharded=None,
        latency=None,
        serve=None,
        commongraph=None,
    ):
        paths = {}
        for suite, report in (
            ("engine", engine or ENGINE_REPORT),
            ("trace", trace or TRACE_REPORT),
            ("stream", stream or STREAM_REPORT),
            ("sharded", sharded or SHARDED_REPORT),
            ("latency", latency or LATENCY_REPORT),
            ("serve", serve or SERVE_REPORT),
            ("commongraph", commongraph or COMMONGRAPH_REPORT),
        ):
            path = tmp_path / f"baseline_{suite}.json"
            path.write_text(json.dumps(report))
            paths[suite] = path
        return paths

    def test_matching_baseline_has_zero_regressions(self, tmp_path):
        result = run_gate(
            baseline_paths=self.baselines(tmp_path),
            collectors=self.collectors(),
        )
        assert result["regressions"] == 0
        assert all(c["status"] == "ok" for c in result["comparisons"])
        assert set(result["reports"]) == {
            "engine",
            "trace",
            "stream",
            "sharded",
            "latency",
            "serve",
            "commongraph",
        }

    def test_injected_throughput_regression_is_caught(self, tmp_path):
        slow = perturbed(ENGINE_REPORT, scale=0.5)
        result = run_gate(
            suites=["engine"],
            tolerance=0.30,
            baseline_paths=self.baselines(tmp_path),
            collectors=self.collectors(engine=slow),
        )
        assert result["regressions"] == 2  # scalar + vectorized rows

    def test_injected_event_drift_is_caught(self, tmp_path):
        drifted = perturbed(TRACE_REPORT, events_delta=3)
        result = run_gate(
            suites=["trace"],
            baseline_paths=self.baselines(tmp_path),
            collectors=self.collectors(trace=drifted),
        )
        assert result["regressions"] == 2
        assert all("determinism" in c["note"] for c in result["comparisons"])

    def test_missing_baseline_raises(self, tmp_path):
        with pytest.raises(BenchGateError, match="no committed baseline"):
            run_gate(
                suites=["engine"],
                baseline_paths={"engine": tmp_path / "missing.json"},
                collectors=self.collectors(),
            )

    def test_unknown_suite_raises(self, tmp_path):
        with pytest.raises(BenchGateError, match="unknown suite"):
            run_gate(suites=["nope"], collectors=self.collectors())

    def test_update_baselines_writes_reports(self, tmp_path):
        # Every suite needs an explicit path: a missing entry falls back
        # to default_baseline_path, i.e. the real committed baseline —
        # an earlier version of this test silently overwrote
        # BENCH_latency.json with the canned report that way.
        paths = {
            suite: tmp_path / "sub" / f"{suite}.json"
            for suite in bench_gate.SUITES
        }
        result = run_gate(
            baseline_paths=paths,
            collectors=self.collectors(),
            update_baselines=True,
        )
        assert result["comparisons"] == []
        assert json.loads(paths["engine"].read_text()) == ENGINE_REPORT
        assert json.loads(paths["trace"].read_text()) == TRACE_REPORT
        assert json.loads(paths["stream"].read_text()) == STREAM_REPORT
        assert json.loads(paths["sharded"].read_text()) == SHARDED_REPORT
        assert json.loads(paths["serve"].read_text()) == SERVE_REPORT
        assert (
            json.loads(paths["commongraph"].read_text()) == COMMONGRAPH_REPORT
        )

    def test_default_baseline_paths(self):
        assert default_baseline_path("engine", quick=False).name == (
            "BENCH_engine.json"
        )
        assert default_baseline_path("trace", quick=True).parent.name == (
            "baselines"
        )
        assert default_baseline_path("stream", quick=False).name == (
            "BENCH_stream.json"
        )
        assert default_baseline_path("stream", quick=True).parent.name == (
            "baselines"
        )
        assert default_baseline_path("sharded", quick=False).name == (
            "BENCH_sharded.json"
        )
        assert default_baseline_path("sharded", quick=True).parent.name == (
            "baselines"
        )
        assert default_baseline_path("serve", quick=False).name == (
            "BENCH_serve.json"
        )
        assert default_baseline_path("serve", quick=True).name == (
            "BENCH_serve.quick.json"
        )
        assert default_baseline_path("commongraph", quick=False).name == (
            "BENCH_commongraph.json"
        )
        assert default_baseline_path("commongraph", quick=True).name == (
            "BENCH_commongraph.quick.json"
        )
        with pytest.raises(BenchGateError):
            default_baseline_path("nope", quick=False)


# ----------------------------------------------------------------------
# CLI wiring: repro bench check
# ----------------------------------------------------------------------
class TestBenchCheckCli:
    @pytest.fixture
    def canned(self, monkeypatch, tmp_path):
        """Patch the real collectors with canned reports; return baselines."""
        reports = {
            "engine": json.loads(json.dumps(ENGINE_REPORT)),
            "trace": json.loads(json.dumps(TRACE_REPORT)),
            "stream": json.loads(json.dumps(STREAM_REPORT)),
            "sharded": json.loads(json.dumps(SHARDED_REPORT)),
            "latency": json.loads(json.dumps(LATENCY_REPORT)),
            "serve": json.loads(json.dumps(SERVE_REPORT)),
            "commongraph": json.loads(json.dumps(COMMONGRAPH_REPORT)),
        }
        for suite in reports:
            monkeypatch.setitem(
                bench_gate._COLLECTORS,
                suite,
                lambda quick, s=suite: reports[s],
            )
        bases = {}
        for suite, report in (
            ("engine", ENGINE_REPORT),
            ("trace", TRACE_REPORT),
            ("stream", STREAM_REPORT),
            ("sharded", SHARDED_REPORT),
            ("latency", LATENCY_REPORT),
            ("serve", SERVE_REPORT),
            ("commongraph", COMMONGRAPH_REPORT),
        ):
            bases[suite] = tmp_path / f"{suite}.json"
            bases[suite].write_text(json.dumps(report))
        return reports, bases

    def base_args(self, bases):
        args = ["bench", "check"]
        for suite, path in bases.items():
            args += [f"--baseline-{suite}", str(path)]
        return args

    def test_exits_zero_on_matching_baselines(self, canned, capsys):
        from repro.cli import main

        _, bases = canned
        assert main(self.base_args(bases)) == 0
        out = capsys.readouterr().out
        assert "ok" in out and "within tolerance" in out

    def test_exits_nonzero_on_injected_regression(self, canned, capsys):
        from repro.cli import main

        reports, bases = canned
        reports["engine"] = perturbed(ENGINE_REPORT, scale=0.4)
        assert main(self.base_args(bases)) == 1
        assert "regression" in capsys.readouterr().out

    def test_no_fail_reports_but_exits_zero(self, canned, capsys):
        from repro.cli import main

        reports, bases = canned
        reports["trace"] = perturbed(TRACE_REPORT, events_delta=1)
        args = self.base_args(bases)
        args += ["--no-fail"]
        assert main(args) == 0
        assert "regression" in capsys.readouterr().out

    def test_single_suite_selection(self, canned, capsys):
        from repro.cli import main

        reports, bases = canned
        # Break the *other* suites: a trace, stream, or sharded regression
        # must not fire when only the engine suite is selected.
        reports["trace"] = perturbed(TRACE_REPORT, scale=0.1)
        reports["stream"] = perturbed(STREAM_REPORT, events_delta=5)
        reports["sharded"] = perturbed(SHARDED_REPORT, scale=0.1)
        reports["serve"] = perturbed(SERVE_REPORT, scale=0.1)
        reports["commongraph"] = perturbed(COMMONGRAPH_REPORT, events_delta=7)
        args = self.base_args(bases)
        args += ["--suite", "engine"]
        assert main(args) == 0

    def test_update_baselines_roundtrip(self, canned, tmp_path, capsys):
        from repro.cli import main

        _, _ = canned
        new_bases = {
            suite: tmp_path / "new" / f"{suite}.json"
            for suite in bench_gate.SUITES
        }
        args = self.base_args(new_bases) + ["--update-baselines"]
        assert main(args) == 0
        assert main(self.base_args(new_bases)) == 0

    def test_missing_baseline_exits_two(self, canned, tmp_path, capsys):
        from repro.cli import main

        args = [
            "bench",
            "check",
            "--baseline-engine",
            str(tmp_path / "absent.json"),
            "--suite",
            "engine",
        ]
        assert main(args) == 2
        assert "baseline" in capsys.readouterr().err
