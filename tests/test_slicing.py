"""Graph-slicing tests (§4.7): queue capacity forces multi-slice runs."""

import numpy as np
import pytest

from repro import reference
from repro.algorithms import make_algorithm
from repro.core.config import AcceleratorConfig
from repro.core.engine import GraphPulseEngine
from repro.core.streaming import JetStreamEngine
from repro.streams import StreamGenerator

from conftest import assert_states_match, make_graph_for


def tiny_queue_config(capacity_vertices: int, event_bytes: int = 14) -> AcceleratorConfig:
    """A config whose queue holds only ``capacity_vertices`` DAP events."""
    return AcceleratorConfig(queue_bytes=capacity_vertices * event_bytes)


class TestStaticSlicing:
    def test_slices_computed_from_capacity(self):
        algorithm = make_algorithm("sssp", source=0)
        graph = make_graph_for(algorithm, n=100, m=400, seed=61)
        config = tiny_queue_config(30, event_bytes=8)
        engine = GraphPulseEngine(algorithm, config)
        engine.compute(graph.snapshot())
        assert engine.core.num_slices == 4  # ceil(100 / 30)

    def test_sliced_result_matches_unsliced(self):
        algorithm = make_algorithm("sssp", source=0)
        graph = make_graph_for(algorithm, n=100, m=400, seed=62)
        full = GraphPulseEngine(make_algorithm("sssp", source=0)).compute(
            graph.snapshot()
        )
        sliced = GraphPulseEngine(
            make_algorithm("sssp", source=0), tiny_queue_config(25, 8)
        ).compute(graph.snapshot())
        assert np.array_equal(full.states, sliced.states)

    def test_cross_slice_spill_counted(self):
        algorithm = make_algorithm("sssp", source=0)
        graph = make_graph_for(algorithm, n=100, m=400, seed=63)
        result = GraphPulseEngine(algorithm, tiny_queue_config(25, 8)).compute(
            graph.snapshot()
        )
        assert result.metrics.total.spill_bytes > 0

    def test_single_slice_no_spill(self):
        algorithm = make_algorithm("sssp", source=0)
        graph = make_graph_for(algorithm, n=100, m=400, seed=63)
        result = GraphPulseEngine(algorithm).compute(graph.snapshot())
        assert result.metrics.total.spill_bytes == 0


class TestStreamingSlicing:
    @pytest.mark.parametrize("name", ["sssp", "pagerank"])
    def test_streaming_correct_with_slices(self, name):
        algorithm = make_algorithm(name, source=0)
        graph = make_graph_for(algorithm, n=90, m=360, seed=64)
        engine = JetStreamEngine(graph, algorithm, config=tiny_queue_config(32))
        engine.initial_compute()
        assert engine.core.num_slices >= 2  # assigned at allocation
        stream = StreamGenerator(graph, seed=65, insertion_ratio=0.5)
        for _ in range(3):
            engine.apply_batch(stream.next_batch(10))
            expected = reference.compute_reference(algorithm, graph.snapshot())
            if name == "pagerank":
                # Sub-threshold truncation drift accumulates per batch for
                # accumulative algorithms; allow a few thousand thresholds.
                assert np.allclose(engine.states, expected, rtol=5e-3)
            else:
                assert_states_match(algorithm, engine.states, expected)

    def test_dap_needs_more_slices_than_graphpulse(self):
        """§6.1: DAP's wider events shrink the per-slice capacity (the
        paper runs 6 TW slices for JetStream vs 3 for GraphPulse)."""
        config = AcceleratorConfig(queue_bytes=1024)
        jet_capacity = config.queue_capacity_vertices(config.event_bytes_dap)
        gp_capacity = config.queue_capacity_vertices(config.event_bytes_graphpulse)
        assert jet_capacity < gp_capacity

    def test_external_assignment(self):
        from repro.graph.partition import partition_graph

        algorithm = make_algorithm("sssp", source=0)
        graph = make_graph_for(algorithm, n=80, m=320, seed=66)
        engine = JetStreamEngine(graph, algorithm, config=tiny_queue_config(50))
        engine.core.allocate(graph.num_vertices)
        partition = partition_graph(graph.snapshot(), 2)
        engine.core.set_slice_assignment(partition.assignment)
        engine.initial_compute.__wrapped__ if False else None
        # initial_compute re-allocates, so run through the core directly:
        result = engine.initial_compute()
        expected = reference.compute_reference(algorithm, graph.snapshot())
        assert_states_match(algorithm, result.states, expected)

    def test_grow_preserves_custom_assignment(self):
        """Regression: ``grow()`` used to rebuild the contiguous-range
        slicing, silently discarding an installed edge-cut assignment the
        moment a streamed insert created a new vertex."""
        from repro.graph.partition import extend_assignment, partition_graph

        algorithm = make_algorithm("sssp", source=0)
        graph = make_graph_for(algorithm, n=80, m=320, seed=68)
        engine = JetStreamEngine(graph, algorithm, config=tiny_queue_config(50))
        engine.core.allocate(graph.num_vertices)
        partition = partition_graph(graph.snapshot(), 2)
        engine.core.set_slice_assignment(partition.assignment)
        engine.core.grow(graph.num_vertices + 5)
        slice_of = engine.core._slice_of
        assert slice_of is not None
        # Old vertices keep their edge-cut slice; new ones follow the
        # deterministic lightest-slice extension rule.
        assert np.array_equal(slice_of[: graph.num_vertices], partition.assignment)
        expected = extend_assignment(
            partition.assignment, graph.num_vertices + 5, partition.num_slices
        )
        assert np.array_equal(slice_of, expected)
        assert engine.core.num_slices == partition.num_slices
        # Growing again extends the already-extended assignment, not the
        # original contiguous ranges.
        engine.core.grow(graph.num_vertices + 9)
        assert np.array_equal(
            engine.core._slice_of,
            extend_assignment(expected, graph.num_vertices + 9, 2),
        )

    def test_grow_without_custom_assignment_reslices(self):
        """Default path unchanged: growth recomputes capacity slicing."""
        algorithm = make_algorithm("sssp", source=0)
        graph = make_graph_for(algorithm, n=60, m=240, seed=69)
        engine = JetStreamEngine(graph, algorithm, config=tiny_queue_config(32))
        engine.core.allocate(graph.num_vertices)
        before = engine.core.num_slices
        engine.core.grow(graph.num_vertices + 40)
        assert engine.core.num_slices >= before
        assert engine.core._slice_of.shape == (graph.num_vertices + 40,)

    def test_slice_switches_recorded(self):
        algorithm = make_algorithm("sssp", source=0)
        graph = make_graph_for(algorithm, n=100, m=400, seed=67)
        engine = JetStreamEngine(graph, algorithm, config=tiny_queue_config(32))
        engine.initial_compute()
        # Round-robin slice activation must have happened at least once.
        # (The queue object is per-run; verify via spill accounting.)
        initial = engine.history[0]
        assert initial.metrics.total.spill_bytes > 0
