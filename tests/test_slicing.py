"""Graph-slicing tests (§4.7): queue capacity forces multi-slice runs."""

import numpy as np
import pytest

from repro import reference
from repro.algorithms import make_algorithm
from repro.core.config import AcceleratorConfig
from repro.core.engine import GraphPulseEngine
from repro.core.streaming import JetStreamEngine
from repro.streams import StreamGenerator

from conftest import assert_states_match, make_graph_for


def tiny_queue_config(capacity_vertices: int, event_bytes: int = 14) -> AcceleratorConfig:
    """A config whose queue holds only ``capacity_vertices`` DAP events."""
    return AcceleratorConfig(queue_bytes=capacity_vertices * event_bytes)


class TestStaticSlicing:
    def test_slices_computed_from_capacity(self):
        algorithm = make_algorithm("sssp", source=0)
        graph = make_graph_for(algorithm, n=100, m=400, seed=61)
        config = tiny_queue_config(30, event_bytes=8)
        engine = GraphPulseEngine(algorithm, config)
        engine.compute(graph.snapshot())
        assert engine.core.num_slices == 4  # ceil(100 / 30)

    def test_sliced_result_matches_unsliced(self):
        algorithm = make_algorithm("sssp", source=0)
        graph = make_graph_for(algorithm, n=100, m=400, seed=62)
        full = GraphPulseEngine(make_algorithm("sssp", source=0)).compute(
            graph.snapshot()
        )
        sliced = GraphPulseEngine(
            make_algorithm("sssp", source=0), tiny_queue_config(25, 8)
        ).compute(graph.snapshot())
        assert np.array_equal(full.states, sliced.states)

    def test_cross_slice_spill_counted(self):
        algorithm = make_algorithm("sssp", source=0)
        graph = make_graph_for(algorithm, n=100, m=400, seed=63)
        result = GraphPulseEngine(algorithm, tiny_queue_config(25, 8)).compute(
            graph.snapshot()
        )
        assert result.metrics.total.spill_bytes > 0

    def test_single_slice_no_spill(self):
        algorithm = make_algorithm("sssp", source=0)
        graph = make_graph_for(algorithm, n=100, m=400, seed=63)
        result = GraphPulseEngine(algorithm).compute(graph.snapshot())
        assert result.metrics.total.spill_bytes == 0


class TestStreamingSlicing:
    @pytest.mark.parametrize("name", ["sssp", "pagerank"])
    def test_streaming_correct_with_slices(self, name):
        algorithm = make_algorithm(name, source=0)
        graph = make_graph_for(algorithm, n=90, m=360, seed=64)
        engine = JetStreamEngine(graph, algorithm, config=tiny_queue_config(32))
        engine.initial_compute()
        assert engine.core.num_slices >= 2  # assigned at allocation
        stream = StreamGenerator(graph, seed=65, insertion_ratio=0.5)
        for _ in range(3):
            engine.apply_batch(stream.next_batch(10))
            expected = reference.compute_reference(algorithm, graph.snapshot())
            if name == "pagerank":
                # Sub-threshold truncation drift accumulates per batch for
                # accumulative algorithms; allow a few thousand thresholds.
                assert np.allclose(engine.states, expected, rtol=5e-3)
            else:
                assert_states_match(algorithm, engine.states, expected)

    def test_dap_needs_more_slices_than_graphpulse(self):
        """§6.1: DAP's wider events shrink the per-slice capacity (the
        paper runs 6 TW slices for JetStream vs 3 for GraphPulse)."""
        config = AcceleratorConfig(queue_bytes=1024)
        jet_capacity = config.queue_capacity_vertices(config.event_bytes_dap)
        gp_capacity = config.queue_capacity_vertices(config.event_bytes_graphpulse)
        assert jet_capacity < gp_capacity

    def test_external_assignment(self):
        from repro.graph.partition import partition_graph

        algorithm = make_algorithm("sssp", source=0)
        graph = make_graph_for(algorithm, n=80, m=320, seed=66)
        engine = JetStreamEngine(graph, algorithm, config=tiny_queue_config(50))
        engine.core.allocate(graph.num_vertices)
        partition = partition_graph(graph.snapshot(), 2)
        engine.core.set_slice_assignment(partition.assignment)
        engine.initial_compute.__wrapped__ if False else None
        # initial_compute re-allocates, so run through the core directly:
        result = engine.initial_compute()
        expected = reference.compute_reference(algorithm, graph.snapshot())
        assert_states_match(algorithm, result.states, expected)

    def test_slice_switches_recorded(self):
        algorithm = make_algorithm("sssp", source=0)
        graph = make_graph_for(algorithm, n=100, m=400, seed=67)
        engine = JetStreamEngine(graph, algorithm, config=tiny_queue_config(32))
        engine.initial_compute()
        # Round-robin slice activation must have happened at least once.
        # (The queue object is per-run; verify via spill accounting.)
        initial = engine.history[0]
        assert initial.metrics.total.spill_bytes > 0
