"""Seeded property tests for the incremental array-native graph store.

The :class:`DynamicGraph` store maintains both CSR directions by splicing
only the touched adjacency runs. These tests drive randomized batch
sequences — inserts, deletes, weight changes, vertex growth (including
growth across the composite-key capacity boundary, which forces a rekey),
symmetric mirroring — and assert the spliced arrays are *identical* (every
offset, target, source, and weight) to a from-scratch :class:`CSRGraph`
build over an independently tracked edge dict.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.dynamic import DeltaVersionStore, DynamicGraph

INITIAL_VERTICES = 24
INITIAL_EDGES = 70
NUM_BATCHES = 12
BATCH_SIZE = 14


def assert_csr_identical(actual: CSRGraph, expected: CSRGraph) -> None:
    assert actual.num_vertices == expected.num_vertices
    assert actual.num_edges == expected.num_edges
    np.testing.assert_array_equal(actual.out_offsets, expected.out_offsets)
    np.testing.assert_array_equal(actual.out_targets, expected.out_targets)
    np.testing.assert_array_equal(actual.out_weights, expected.out_weights)
    np.testing.assert_array_equal(actual.in_offsets, expected.in_offsets)
    np.testing.assert_array_equal(actual.in_sources, expected.in_sources)
    np.testing.assert_array_equal(actual.in_weights, expected.in_weights)


def oracle_csr(expected: dict, num_vertices: int) -> CSRGraph:
    """From-scratch CSR over the independently tracked edge dict."""
    return CSRGraph(
        num_vertices, [(u, v, w) for (u, v), w in expected.items()]
    )


class _Model:
    """Independent mirror of the expected edge set (the test's oracle)."""

    def __init__(self, symmetric: bool):
        self.symmetric = symmetric
        self.edges: dict = {}

    def insert(self, u: int, v: int, w: float) -> None:
        self.edges[(u, v)] = w
        if self.symmetric and u != v:
            self.edges[(v, u)] = w

    def delete(self, u: int, v: int) -> None:
        del self.edges[(u, v)]
        if self.symmetric and u != v:
            del self.edges[(v, u)]

    def contains(self, u: int, v: int) -> bool:
        return (u, v) in self.edges or (
            self.symmetric and (v, u) in self.edges
        )


def _random_batch(rng, model: _Model, max_vertex: int, grow: bool):
    """A valid (insertions, deletions) pair against the model state."""
    deletions = []
    live = list(model.edges)
    picked = set()
    if live:
        idx = rng.choice(len(live), size=min(BATCH_SIZE // 2, len(live)), replace=False)
        for i in np.sort(idx):
            u, v = live[int(i)]
            if (u, v) in picked or (v, u) in picked:
                continue
            picked.add((u, v))
            deletions.append((u, v))
    insertions = []
    staged = set()
    for _ in range(BATCH_SIZE):
        if grow and rng.random() < 0.3:
            u = int(rng.integers(0, max_vertex + 9))
            v = int(rng.integers(0, max_vertex + 9))
        else:
            u = int(rng.integers(0, max_vertex))
            v = int(rng.integers(0, max_vertex))
        if model.contains(u, v) and (u, v) not in picked and (v, u) not in picked:
            continue  # duplicate insert (and not freed by a deletion)
        if (u, v) in staged or (model.symmetric and (v, u) in staged):
            continue
        if model.contains(u, v):
            # Freed by this batch's deletion: weight-change idiom.
            if (u, v) not in picked and not (model.symmetric and (v, u) in picked):
                continue
        staged.add((u, v))
        insertions.append((u, v, float(rng.integers(1, 12))))
    return insertions, deletions


def _apply_to_model(model: _Model, insertions, deletions) -> None:
    for u, v in deletions:
        model.delete(u, v)
    for u, v, w in insertions:
        model.insert(u, v, w)


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("symmetric", [False, True], ids=["directed", "symmetric"])
@pytest.mark.parametrize("grow", [False, True], ids=["fixed", "growing"])
def test_incremental_store_matches_from_scratch_rebuild(seed, symmetric, grow):
    rng = np.random.default_rng((seed, symmetric, grow, 99))
    graph = DynamicGraph(INITIAL_VERTICES, symmetric=symmetric)
    model = _Model(symmetric)
    for _ in range(INITIAL_EDGES):
        u = int(rng.integers(0, INITIAL_VERTICES))
        v = int(rng.integers(0, INITIAL_VERTICES))
        if model.contains(u, v):
            continue
        w = float(rng.integers(1, 12))
        graph.add_edge(u, v, w)
        model.insert(u, v, w)
    assert_csr_identical(graph.snapshot(), oracle_csr(model.edges, graph.num_vertices))

    for batch_i in range(NUM_BATCHES):
        insertions, deletions = _random_batch(rng, model, graph.num_vertices, grow)
        graph.apply_batch(insertions, deletions)
        _apply_to_model(model, insertions, deletions)

        # Occasionally interleave adjacency queries so the lazy flush is
        # exercised at random points, not only from snapshot().
        if batch_i % 3 == 1 and graph.num_vertices:
            u = int(rng.integers(0, graph.num_vertices))
            assert graph.out_degree(u) == sum(
                1 for (a, _b) in model.edges if a == u
            )

        snap = graph.snapshot()
        oracle = oracle_csr(model.edges, graph.num_vertices)
        assert_csr_identical(snap, oracle)
        # The in-tree comparator path must agree with the true oracle too.
        assert_csr_identical(graph.rebuild_snapshot(), oracle)

    if grow:
        # Growth mode must have crossed the power-of-two capacity boundary
        # at least once, exercising the key-stride rekey.
        assert graph.num_vertices > 32


@pytest.mark.parametrize("seed", [0, 7])
def test_snapshot_with_sinks_matches_filtered_rebuild(seed):
    rng = np.random.default_rng((seed, 17))
    graph = DynamicGraph(INITIAL_VERTICES)
    model = _Model(symmetric=False)
    for _ in range(INITIAL_EDGES):
        u = int(rng.integers(0, INITIAL_VERTICES))
        v = int(rng.integers(0, INITIAL_VERTICES))
        if model.contains(u, v):
            continue
        w = float(rng.integers(1, 12))
        graph.add_edge(u, v, w)
        model.insert(u, v, w)

    for _ in range(6):
        insertions, deletions = _random_batch(rng, model, graph.num_vertices, False)
        graph.apply_batch(insertions, deletions)
        _apply_to_model(model, insertions, deletions)
        sinks = set(
            int(s) for s in rng.choice(graph.num_vertices, size=5, replace=False)
        )
        filtered = {
            (u, v): w for (u, v), w in model.edges.items() if u not in sinks
        }
        assert_csr_identical(
            graph.snapshot_with_sinks(sinks),
            oracle_csr(filtered, graph.num_vertices),
        )


def test_snapshot_cache_and_copy_on_write_isolation():
    graph = DynamicGraph.from_edges([(0, 1, 1.0), (1, 2, 2.0), (2, 0, 3.0)])
    first = graph.snapshot()
    assert graph.snapshot() is first  # cache hit, no rebuild
    stats = graph.store_stats()
    assert stats["snapshot_cache_hits"] == 1
    assert stats["snapshot_builds"] == 1

    before = (first.out_targets.copy(), first.out_weights.copy(), first.out_offsets.copy())
    graph.apply_batch([(0, 2, 9.0)], [(1, 2)])
    second = graph.snapshot()
    assert second is not first
    # The old snapshot must be untouched by the splice (copy-on-write).
    np.testing.assert_array_equal(first.out_targets, before[0])
    np.testing.assert_array_equal(first.out_weights, before[1])
    np.testing.assert_array_equal(first.out_offsets, before[2])
    assert second.has_edge(0, 2) and not second.has_edge(1, 2)


def test_non_incremental_mode_always_rebuilds():
    graph = DynamicGraph(4, incremental_snapshots=False)
    graph.add_edge(0, 1, 1.0)
    a = graph.snapshot()
    b = graph.snapshot()
    assert a is not b
    assert graph.store_stats()["full_rebuilds"] >= 2


class TestDeltaVersionStore:
    def _build(self, seed=5, num_batches=6):
        rng = np.random.default_rng(seed)
        graph = DynamicGraph(10)
        model = _Model(symmetric=False)
        for _ in range(25):
            u = int(rng.integers(0, 10))
            v = int(rng.integers(0, 10))
            if model.contains(u, v):
                continue
            w = float(rng.integers(1, 9))
            graph.add_edge(u, v, w, _count_version=False)
            model.insert(u, v, w)
        store = DeltaVersionStore(graph)
        saved = [(graph.version, dict(model.edges), graph.num_vertices)]
        for _ in range(num_batches):
            insertions, deletions = _random_batch(rng, model, graph.num_vertices, True)
            graph.apply_batch(insertions, deletions)
            store.record_batch(insertions, deletions)
            _apply_to_model(model, insertions, deletions)
            saved.append((graph.version, dict(model.edges), graph.num_vertices))
        return store, saved

    def _check(self, store, version, edges, num_vertices):
        assert_csr_identical(
            store.reconstruct(version), oracle_csr(edges, num_vertices)
        )

    def test_monotone_replay_rolls_forward(self):
        store, saved = self._build()
        for version, edges, n in saved:
            self._check(store, version, edges, n)

    def test_repeated_and_backward_access(self):
        store, saved = self._build()
        last_version = saved[-1][0]
        store.reconstruct(last_version)
        # Same version again: must not replay past it (regression: the
        # roll-forward cursor used to apply every later delta).
        for version, edges, n in saved:
            self._check(store, version, edges, n)
            self._check(store, version, edges, n)  # repeat at cursor
        # Backward jump after the cursor advanced to the end.
        self._check(store, last_version, saved[-1][1], saved[-1][2])
        self._check(store, saved[1][0], saved[1][1], saved[1][2])

    def test_unknown_version_raises(self):
        store, saved = self._build()
        with pytest.raises(KeyError):
            store.reconstruct(saved[-1][0] + 1000)
