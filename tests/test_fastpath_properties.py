"""Express-lane safety properties.

Two claims back the whole fast path, and both are checked here directly:

1. **Safe ⇒ fixed point.** After every update the classifier labels safe
   and the lane applies, the state arrays are *already* the converged
   answer for the mutated graph: a cold-start ``reference.py`` computation
   changes nothing, and neither does re-running the engine from scratch.
   If classification were even slightly optimistic, this is where it
   shows up.

2. **The harness has teeth.** A deliberately mislabeled update — a
   forged ``safe`` verdict for a load-bearing delete or a cascading
   insert, pushed straight through the lane's apply kernel — must be
   caught by the same fixed-point assertion. This pins the test's own
   sensitivity: a future weakening of ``assert_fixed_point`` (or an
   accidental re-convergence hidden in the apply path) fails loudly.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
import pytest

from repro.algorithms import make_algorithm
from repro.algorithms.base import UpdateClassification
from repro.core.fastpath import ExpressLane
from repro.core.policies import DeletePolicy
from repro.core.streaming import JetStreamEngine
from repro.graph import generators
from repro.graph.dynamic import DynamicGraph
from repro.reference import compute_reference
from repro.streams import StreamGenerator

PROPERTY_ALGORITHMS = ["sssp", "sswp", "bfs", "cc"]
PROPERTY_SEEDS = [0, 1]

NUM_VERTICES = 48
NUM_EDGES = 150
NUM_SINGLES = 24
DELETE_PROB = 0.3


def _build_graph(algorithm, seed: int) -> DynamicGraph:
    edges = generators.rmat(NUM_VERTICES, NUM_EDGES, seed=seed, weighted=True)
    if algorithm.needs_symmetric:
        graph = DynamicGraph(NUM_VERTICES, symmetric=True)
        seen = set()
        for u, v, w in edges:
            key = (min(u, v), max(u, v))
            if key in seen:
                continue
            seen.add(key)
            graph.add_edge(u, v, w, _count_version=False)
        return graph
    return DynamicGraph.from_edges(edges, NUM_VERTICES)


def assert_fixed_point(engine: JetStreamEngine, context: str = "") -> None:
    """The engine's states are the converged answer for its current graph.

    Compares against a cold-start reference computation on a fresh
    snapshot; for the selective algorithms under test ``values_close`` is
    exact equality (modulo shared infinities), so a single stale vertex
    fails.
    """
    algorithm = engine.algorithm
    states = engine.query_result()
    expected = compute_reference(algorithm, engine.graph.snapshot())
    bad = [
        (i, float(states[i]), float(expected[i]))
        for i in range(len(expected))
        if not algorithm.values_close(float(states[i]), float(expected[i]))
    ]
    assert not bad, f"{context}: state is not a fixed point; stale {bad[:5]}"


def _singles(name: str, seed: int) -> List[Tuple[int, int, float, str]]:
    """A mixed single-update stream consistent with the scenario graph."""
    algorithm = make_algorithm(name, source=0)
    graph = _build_graph(algorithm, seed)
    generator = StreamGenerator(graph, seed=seed + 3000)
    rng = np.random.default_rng(seed + 5000)
    singles = []
    for _ in range(NUM_SINGLES):
        ratio = 0.0 if rng.random() < DELETE_PROB else 1.0
        batch = generator.next_batch(1, insertion_ratio=ratio)
        graph.apply_batch(
            [(e.u, e.v, e.w) for e in batch.insertions],
            [e.key() for e in batch.deletions],
        )
        if batch.insertions:
            e = batch.insertions[0]
            singles.append((e.u, e.v, e.w, "insert"))
        else:
            e = batch.deletions[0]
            singles.append((e.u, e.v, e.w, "delete"))
    return singles


@pytest.mark.parametrize("seed", PROPERTY_SEEDS)
@pytest.mark.parametrize("name", PROPERTY_ALGORITHMS)
def test_safe_updates_leave_state_a_fixed_point(name, seed):
    """Every safe-labeled apply lands on an already-converged state."""
    algorithm = make_algorithm(name, source=0)
    graph = _build_graph(algorithm, seed)
    engine = JetStreamEngine(graph, algorithm, policy=DeletePolicy.DAP)
    try:
        engine.initial_compute()
        lane = ExpressLane(engine)
        safe_seen = 0
        for u, v, w, op in _singles(name, seed):
            result = lane.apply(u, v, w, op)
            if result.safe:
                safe_seen += 1
                assert_fixed_point(
                    engine,
                    f"{name}/seed={seed}: after safe {op} "
                    f"({u}, {v}, {w}) [{result.reason}]",
                )
        # The property must not pass vacuously: the stream has to hit the
        # fast path. Mixed 70/30 streams classify mostly safe in practice.
        assert safe_seen >= NUM_SINGLES // 4, (
            f"{name}/seed={seed}: only {safe_seen}/{NUM_SINGLES} updates "
            "took the fast path; the fixed-point property was barely tested"
        )

        # Literal engine re-run on the final graph: nothing changes.
        rerun_graph = DynamicGraph.from_edges(
            sorted(engine.graph.edges()), engine.graph.num_vertices
        ) if not algorithm.needs_symmetric else None
        if rerun_graph is None:
            rerun_graph = DynamicGraph(engine.graph.num_vertices, symmetric=True)
            for u, v, w in sorted(engine.graph.edges()):
                if u <= v:
                    rerun_graph.add_edge(u, v, w, _count_version=False)
        rerun = JetStreamEngine(
            rerun_graph, make_algorithm(name, source=0), policy=DeletePolicy.DAP
        )
        try:
            rerun.initial_compute()
            fresh = rerun.query_result()
            current = engine.query_result()
            bad = [
                (i, float(current[i]), float(fresh[i]))
                for i in range(len(fresh))
                if not algorithm.values_close(float(current[i]), float(fresh[i]))
            ]
            assert not bad, (
                f"{name}/seed={seed}: engine re-run changed states {bad[:5]}"
            )
        finally:
            rerun.close()
    finally:
        engine.close()


# ----------------------------------------------------------------------
# Mislabel detection: the harness catches a forged safe verdict.
# ----------------------------------------------------------------------
CHAIN_EDGES = [(0, 1, 2.0), (1, 2, 3.0), (2, 3, 1.0)]


def _chain_engine() -> JetStreamEngine:
    graph = DynamicGraph.from_edges(CHAIN_EDGES, 4)
    engine = JetStreamEngine(
        graph, make_algorithm("sssp", source=0), policy=DeletePolicy.DAP
    )
    engine.initial_compute()
    # Converged SSSP distances along the chain.
    assert list(engine.query_result()) == [0.0, 2.0, 5.0, 6.0]
    return engine


def test_mislabeled_load_bearing_delete_is_caught():
    """Forging ``safe`` for a support-edge delete trips the harness."""
    engine = _chain_engine()
    try:
        lane = ExpressLane(engine)
        # The real classifier refuses this delete: 0->1 is 1's only support.
        verdict = lane.classify(0, 1, 2.0, "delete")
        assert not verdict.safe
        assert verdict.reason == "delete-unsupported"

        forged = UpdateClassification(safe=True, reason="delete-non-support")
        lane._apply_safe(0, 1, 2.0, "delete", forged)
        with pytest.raises(AssertionError, match="not a fixed point"):
            assert_fixed_point(engine, "forged delete (0, 1)")
    finally:
        engine.close()


def test_mislabeled_cascading_insert_is_caught():
    """Forging ``safe`` for a cascading insert trips the harness."""
    engine = _chain_engine()
    try:
        lane = ExpressLane(engine)
        # Insert 0->2 with weight 1: improves vertex 2 (5 -> 1) but the
        # improvement must cascade to 3, so the classifier rejects it.
        verdict = lane.classify(0, 2, 1.0, "insert")
        assert not verdict.safe
        assert verdict.reason == "insert-cascades"

        forged = UpdateClassification(
            safe=True,
            reason="insert-local-improvement",
            new_state=(2, 1.0),
            dependency_updates=((2, 0),),
        )
        lane._apply_safe(0, 2, 1.0, "insert", forged)
        with pytest.raises(AssertionError, match="not a fixed point"):
            assert_fixed_point(engine, "forged insert (0, 2)")
    finally:
        engine.close()


def test_classification_is_pure():
    """``classify`` mutates nothing: repeated calls give identical verdicts
    and the converged state stays untouched."""
    engine = _chain_engine()
    try:
        lane = ExpressLane(engine)
        before = np.array(engine.query_result(), copy=True)
        first = lane.classify(1, 3, 1.0, "insert")
        second = lane.classify(1, 3, 1.0, "insert")
        assert first == second
        assert np.array_equal(before, engine.query_result())
        assert lane.stats["safe_applied"] == 0
        assert lane.stats["engine_fallthroughs"] == 0
    finally:
        engine.close()
