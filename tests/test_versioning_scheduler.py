"""Tests for delta-encoded versioning and the partial-drain scheduler."""

import numpy as np
import pytest

from repro import reference
from repro.algorithms import make_algorithm
from repro.core.config import AcceleratorConfig
from repro.core.streaming import JetStreamEngine
from repro.graph.dynamic import DeltaVersionStore, DynamicGraph
from repro.graph import generators
from repro.streams import StreamGenerator

from conftest import random_digraph


class TestDeltaVersionStore:
    def _stream(self, store, graph, batches=3):
        generator = StreamGenerator(graph, seed=5, insertion_ratio=0.5)
        for _ in range(batches):
            batch = generator.next_batch(8)
            graph.apply_batch(
                [(e.u, e.v, e.w) for e in batch.insertions],
                [e.key() for e in batch.deletions],
            )
            store.record_batch(
                [(e.u, e.v, e.w) for e in batch.insertions],
                [e.key() for e in batch.deletions],
            )

    def test_reconstruct_base(self):
        graph = random_digraph(seed=1)
        base_edges = sorted(graph.edges())
        store = DeltaVersionStore(graph)
        self._stream(store, graph)
        assert sorted(store.reconstruct(store.versions()[0]).edges()) == base_edges

    def test_reconstruct_latest_matches_live(self):
        graph = random_digraph(seed=2)
        store = DeltaVersionStore(graph)
        self._stream(store, graph)
        latest = store.reconstruct(store.versions()[-1])
        assert sorted(latest.edges()) == sorted(graph.edges())

    def test_reconstruct_intermediate(self):
        graph = random_digraph(seed=3)
        store = DeltaVersionStore(graph)
        snapshots = {graph.version: sorted(graph.edges())}
        generator = StreamGenerator(graph, seed=6, insertion_ratio=0.5)
        for _ in range(3):
            batch = generator.next_batch(6)
            graph.apply_batch(
                [(e.u, e.v, e.w) for e in batch.insertions],
                [e.key() for e in batch.deletions],
            )
            store.record_batch(
                [(e.u, e.v, e.w) for e in batch.insertions],
                [e.key() for e in batch.deletions],
            )
            snapshots[graph.version] = sorted(graph.edges())
        for version, expected in snapshots.items():
            assert sorted(store.reconstruct(version).edges()) == expected

    def test_unknown_version_rejected(self):
        graph = random_digraph(seed=4)
        store = DeltaVersionStore(graph)
        with pytest.raises(KeyError):
            store.reconstruct(999)

    def test_delta_bytes_grow(self):
        graph = random_digraph(seed=5)
        store = DeltaVersionStore(graph)
        assert store.delta_bytes() == 0
        self._stream(store, graph)
        assert store.delta_bytes() > 0

    def test_vertex_growth_tracked(self):
        graph = DynamicGraph.from_edges([(0, 1, 1.0)], 2)
        store = DeltaVersionStore(graph)
        graph.apply_batch([(1, 7, 2.0)], [])
        store.record_batch([(1, 7, 2.0)], [])
        assert store.reconstruct(graph.version).num_vertices == 8


class TestBoundedRetention:
    def _stream(self, store, graph, batches=5, seed=5):
        generator = StreamGenerator(graph, seed=seed, insertion_ratio=0.5)
        for _ in range(batches):
            batch = generator.next_batch(8)
            graph.apply_batch(
                [(e.u, e.v, e.w) for e in batch.insertions],
                [e.key() for e in batch.deletions],
            )
            store.record_batch(
                [(e.u, e.v, e.w) for e in batch.insertions],
                [e.key() for e in batch.deletions],
            )

    def test_keep_versions_bounds_history(self):
        graph = random_digraph(seed=20)
        store = DeltaVersionStore(graph, keep_versions=3)
        self._stream(store, graph)
        assert len(store.versions()) == 3
        assert store.versions() == [3, 4, 5]

    def test_evicted_version_raises(self):
        graph = random_digraph(seed=21)
        store = DeltaVersionStore(graph, keep_versions=2)
        self._stream(store, graph)
        with pytest.raises(KeyError):
            store.reconstruct(0)

    def test_retained_versions_reconstruct_exactly(self):
        graph = random_digraph(seed=22)
        store = DeltaVersionStore(graph, keep_versions=3)
        snapshots = {}
        generator = StreamGenerator(graph, seed=7, insertion_ratio=0.5)
        for _ in range(5):
            batch = generator.next_batch(6)
            graph.apply_batch(
                [(e.u, e.v, e.w) for e in batch.insertions],
                [e.key() for e in batch.deletions],
            )
            store.record_batch(
                [(e.u, e.v, e.w) for e in batch.insertions],
                [e.key() for e in batch.deletions],
            )
            snapshots[graph.version] = sorted(graph.edges())
        for version in store.versions():
            assert sorted(store.reconstruct(version).edges()) == snapshots[version]

    def test_stats_shape(self):
        graph = random_digraph(seed=23)
        store = DeltaVersionStore(graph, keep_versions=3)
        self._stream(store, graph)
        stats = store.stats()
        assert stats["keep_versions"] == 3
        assert stats["versions_held"] == 3
        assert stats["oldest_version"] == 3
        assert stats["newest_version"] == 5
        assert stats["evicted_versions"] == 3
        assert stats["delta_records"] > 0
        assert stats["delta_bytes"] > 0

    def test_keep_versions_validated(self):
        graph = random_digraph(seed=24)
        with pytest.raises(ValueError):
            DeltaVersionStore(graph, keep_versions=0)


class TestCommonSlice:
    def test_common_plus_additions_reconstructs_each_version(self):
        graph = random_digraph(seed=30)
        store = DeltaVersionStore(graph)
        generator = StreamGenerator(graph, seed=31, insertion_ratio=0.5)
        for _ in range(4):
            batch = generator.next_batch(8)
            graph.apply_batch(
                [(e.u, e.v, e.w) for e in batch.insertions],
                [e.key() for e in batch.deletions],
            )
            store.record_batch(
                [(e.u, e.v, e.w) for e in batch.insertions],
                [e.key() for e in batch.deletions],
            )
        versions = store.versions()
        slice_ = store.common_slice(versions)
        common = set(slice_.common_edges)
        for version in versions:
            expected = sorted(store.reconstruct(version).edges())
            rebuilt = sorted(
                list(slice_.common_edges) + list(slice_.additions[version])
            )
            assert rebuilt == expected, f"version {version}"
            # Additions are genuinely outside the shared prefix.
            assert not common.intersection(slice_.additions[version])

    def test_common_vertices_is_min(self):
        graph = DynamicGraph.from_edges([(0, 1, 1.0)], 2)
        store = DeltaVersionStore(graph)
        graph.apply_batch([(1, 9, 2.0)], [])
        store.record_batch([(1, 9, 2.0)], [])
        slice_ = store.common_slice(store.versions())
        assert slice_.common_vertices == 2
        assert slice_.vertices[store.versions()[-1]] == 10

    def test_reweighted_edge_not_common(self):
        graph = DynamicGraph.from_edges([(0, 1, 1.0), (1, 2, 3.0)], 3)
        store = DeltaVersionStore(graph)
        # Reweight = delete + insert in one batch (per paper §2.1).
        graph.apply_batch([(0, 1, 7.0)], [(0, 1)])
        store.record_batch([(0, 1, 7.0)], [(0, 1)])
        slice_ = store.common_slice(store.versions())
        assert (1, 2, 3.0) in slice_.common_edges
        assert all((u, v) != (0, 1) for u, v, _ in slice_.common_edges)
        v0, v1 = store.versions()
        assert (0, 1, 1.0) in slice_.additions[v0]
        assert (0, 1, 7.0) in slice_.additions[v1]


class TestPartialDrainScheduler:
    @pytest.mark.parametrize("rows", [None, 8, 2])
    def test_results_independent_of_drain_width(self, rows):
        edges = generators.erdos_renyi(50, 200, seed=7)
        graph = DynamicGraph.from_edges(edges, 50)
        config = AcceleratorConfig(scheduler_rows_per_round=rows)
        engine = JetStreamEngine(graph, make_algorithm("sssp", source=0), config=config)
        engine.initial_compute()
        stream = StreamGenerator(graph, seed=8)
        result = engine.apply_batch(stream.next_batch(10))
        assert np.array_equal(result.states, reference.sssp(graph.snapshot(), 0))

    def test_narrow_drain_takes_more_rounds(self):
        edges = generators.erdos_renyi(50, 200, seed=9)

        def rounds_for(rows):
            graph = DynamicGraph.from_edges(edges, 50)
            config = AcceleratorConfig(scheduler_rows_per_round=rows)
            engine = JetStreamEngine(
                graph, make_algorithm("sssp", source=0), config=config
            )
            result = engine.initial_compute()
            return sum(p.num_rounds for p in result.metrics.phases)

        assert rounds_for(1) > rounds_for(None)

    def test_delete_phase_respects_drain_width(self):
        edges = generators.erdos_renyi(50, 200, seed=10)
        graph = DynamicGraph.from_edges(edges, 50)
        config = AcceleratorConfig(scheduler_rows_per_round=2)
        engine = JetStreamEngine(graph, make_algorithm("sssp", source=0), config=config)
        engine.initial_compute()
        stream = StreamGenerator(graph, seed=11)
        result = engine.apply_batch(stream.next_batch(12, insertion_ratio=0.0))
        assert np.array_equal(result.states, reference.sssp(graph.snapshot(), 0))
