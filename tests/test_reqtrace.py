"""Tests for request-scoped tracing (:mod:`repro.obs.reqtrace`).

Covers the tail-latency attribution pipeline end to end:

* stage marks partition a request's wall time (monotonic, clamped,
  explicit-timestamp carve-outs like the express lane's classify split);
* the queue-wait stage grows deterministically under a writer-gate pause;
* the slow-request ring evicts oldest-first at its bound;
* the JSONL access log round-trips through :func:`read_access_log` /
  :func:`analyze_requests`, including the schema/monotonicity gate;
* span links (``Tracer.linked``) land on root spans/events only, and the
  wall-clock anchor reaches every sink and the trace file;
* the serve HTTP surface: ``GET /debug/requests`` and the full
  access-log + engine-trace join with 100% write coverage.
"""

from __future__ import annotations

import json
import threading
import time
from time import perf_counter

import pytest

from repro.host import Accelerator
from repro.obs import (
    REGISTRY,
    JsonlSink,
    MemorySink,
    Tracer,
    analyze_requests,
    read_access_log,
    read_trace,
    render_request_table,
    validate_trace,
)
from repro.obs.metrics import Histogram
from repro.obs.reqtrace import (
    ACCESS_LOG_FORMAT,
    ACCESS_LOG_VERSION,
    REQUEST_LOG,
    RequestContext,
    RequestLog,
)
from repro.serve import ServeApp, ServeServer

from tests.test_serve import EDGES, HttpClient, wait_until

A = pytest.approx


@pytest.fixture
def app():
    app = ServeApp()
    yield app
    app.close()


def make_session(app, name="s", **kwargs):
    return app.create_session(EDGES, "sssp", name=name, source=0, **kwargs)


class TestRequestContext:
    def test_explicit_marks_partition_deterministically(self):
        ctx = RequestContext("r000001", "POST", "/sessions/s/update")
        t0 = ctx.t_recv
        ctx.mark("parse", t=t0 + 0.010)
        ctx.mark("queued", t=t0 + 0.030)
        ctx.mark("classify", t=t0 + 0.031)
        ctx.mark("apply", t=t0 + 0.050)
        stages, unaccounted = ctx.stages(t_end=t0 + 0.060)
        assert stages == {
            "parse": A(0.010),
            "queued": A(0.020),
            "classify": A(0.001),
            "apply": A(0.019),
        }
        assert unaccounted == A(0.010)
        # The partition is exact by construction.
        assert sum(stages.values()) + unaccounted == A(0.060)

    def test_out_of_order_mark_clamps_to_zero_not_negative(self):
        ctx = RequestContext("r000001", "GET", "/x")
        t0 = ctx.t_recv
        ctx.mark("parse", t=t0 + 0.020)
        ctx.mark("rewind", t=t0 + 0.005)  # clock ran "backwards"
        ctx.mark("respond", t=t0 + 0.030)
        stages, unaccounted = ctx.stages(t_end=t0 + 0.030)
        assert stages["rewind"] == 0.0
        # The respond stage is measured from the furthest mark seen, so
        # the partition still sums to the wall time.
        assert stages["respond"] == A(0.010)
        assert sum(stages.values()) + unaccounted == A(0.030)

    def test_live_marks_are_monotonic_and_sum_to_wall_time(self):
        ctx = RequestContext("r000001", "POST", "/x")
        ctx.mark("parse")
        time.sleep(0.002)
        ctx.mark("apply")
        t_end = perf_counter()
        stages, unaccounted = ctx.stages(t_end)
        assert all(v >= 0.0 for v in stages.values())
        assert unaccounted >= 0.0
        assert sum(stages.values()) + unaccounted == A(t_end - ctx.t_recv)

    def test_repeated_stage_accumulates(self):
        ctx = RequestContext("r000001", "GET", "/x")
        t0 = ctx.t_recv
        ctx.mark("chunk", t=t0 + 0.010)
        ctx.mark("other", t=t0 + 0.015)
        ctx.mark("chunk", t=t0 + 0.025)
        stages, _ = ctx.stages(t_end=t0 + 0.025)
        assert stages["chunk"] == A(0.020)


class TestRequestLog:
    def test_ring_evicts_oldest_first(self):
        log = RequestLog()
        log.configure(ring_size=2, slow_threshold_s=0.0)
        try:
            for _ in range(3):
                ctx = log.open_request("POST", "/x")
                ctx.mark("respond")
                log.finish(ctx, "update", 200)
            payload = log.debug_payload()
            assert payload["requests_total"] == 3
            assert payload["slow_total"] == 3
            assert [r["id"] for r in payload["ring"]] == ["r000002", "r000003"]
        finally:
            log.reset()

    def test_threshold_keeps_fast_requests_out_of_the_ring(self):
        log = RequestLog()
        log.configure(slow_threshold_s=10.0)
        try:
            ctx = log.open_request("GET", "/x")
            ctx.mark("respond")
            log.finish(ctx, "read", 200)
            payload = log.debug_payload()
            assert payload["requests_total"] == 1
            assert payload["slow_total"] == 0
            assert payload["ring"] == []
        finally:
            log.reset()

    def test_ring_size_must_be_positive(self):
        with pytest.raises(ValueError):
            RequestLog().configure(ring_size=0)

    def test_finish_folds_stage_histograms_with_exemplars(self):
        log = RequestLog()
        log.configure(slow_threshold_s=0.0)
        REGISTRY.enable().reset()
        try:
            ctx = log.open_request("POST", "/sessions/s/update")
            ctx.mark("parse")
            ctx.mark("apply")
            log.finish(ctx, "update", 200, registry=REGISTRY)
            families = {
                f["name"]: f for f in REGISTRY.snapshot()["families"]
            }
            family = families["repro_serve_stage_latency_seconds"]
            labels = {tuple(sorted(s["labels"].items())) for s in family["series"]}
            assert (("route", "update"), ("stage", "parse")) in labels
            assert (("route", "update"), ("stage", "apply")) in labels
            exemplar_ids = {
                ex["id"]
                for s in family["series"]
                for ex in s.get("exemplars", {}).values()
            }
            assert ctx.request_id in exemplar_ids
        finally:
            REGISTRY.disable().reset()
            log.reset()

    def test_access_log_roundtrips_through_the_analyzer(self, tmp_path):
        path = str(tmp_path / "access.jsonl")
        log = RequestLog()
        log.configure(path=path, slow_threshold_s=0.0)
        try:
            for route, marks in (
                ("ingest", ("parse", "queued", "apply", "publish", "respond")),
                ("read", ("parse", "snapshot", "respond")),
            ):
                ctx = log.open_request("POST", f"/sessions/s/{route}")
                for stage in marks:
                    time.sleep(0.001)
                    ctx.mark(stage)
                log.finish(ctx, route, 200)
        finally:
            log.reset()  # closes (and flushes) the file

        header, records, errors = read_access_log(path)
        assert errors == []
        assert header["format"] == ACCESS_LOG_FORMAT
        assert header["version"] == ACCESS_LOG_VERSION
        assert [r["route"] for r in records] == ["ingest", "read"]

        analysis = analyze_requests(path)
        assert analysis["requests"] == 2
        assert analysis["errors"] == []
        assert {row["route"] for row in analysis["routes"]} == {"ingest", "read"}
        stage_names = {
            row["stage"] for row in analysis["stages"] if row["route"] == "ingest"
        }
        assert {"parse", "queued", "apply", "publish", "respond"} <= stage_names
        attribution = analysis["attribution"]
        assert attribution["slow_requests"] >= 1
        # Stages were marked right up to finish(): residual is tiny.
        assert attribution["min_share"] > 0.90
        # The rendered table carries the acceptance-facing numbers.
        table = render_request_table(analysis)
        assert "slowest decile" in table
        assert "ingest" in table

    def test_analyzer_flags_schema_and_monotonicity_violations(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        good = {
            "type": "request",
            "id": "r000001",
            "route": "read",
            "method": "GET",
            "path": "/x",
            "status": 200,
            "wall_recv": 0.0,
            "t_recv": 0.0,
            "dur_s": 0.010,
            "stages": {"parse": 0.004, "snapshot": 0.005},
            "unaccounted": 0.001,
        }
        negative = dict(good, id="r000002", stages={"parse": -0.002})
        unbalanced = dict(
            good, id="r000003", stages={"parse": 0.001}, unaccounted=0.0
        )
        with open(path, "w", encoding="utf-8") as handle:
            header = {
                "type": "header",
                "format": ACCESS_LOG_FORMAT,
                "version": ACCESS_LOG_VERSION,
                "epoch_s": 0.0,
                "perf_counter": 0.0,
            }
            for record in (header, good, negative, unbalanced):
                handle.write(json.dumps(record) + "\n")
        header_out, records, errors = read_access_log(path)
        assert len(records) == 1 and records[0]["id"] == "r000001"
        assert len(errors) == 2
        assert any("monotonic" in e for e in errors)

    def test_analyzer_requires_the_header_line(self, tmp_path):
        path = str(tmp_path / "headerless.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"type": "request"}) + "\n")
        _, _, errors = read_access_log(path)
        assert errors


class TestServeSessionTracing:
    def test_queue_wait_is_attributed_under_writer_pause(self, app):
        served = make_session(app)
        log = RequestLog()
        log.configure(slow_threshold_s=0.0)
        try:
            served.pause_writer()
            ctx = log.open_request("POST", "/sessions/s/update")
            ctx.mark("parse")
            done = threading.Event()
            reply = {}

            def submit():
                reply["result"] = served.submit(
                    "update", {"u": 1, "v": 3, "w": 0.5}, ctx=ctx
                )
                done.set()

            threading.Thread(target=submit, daemon=True).start()
            # The writer has dequeued the op and parked at the gate.
            wait_until(
                lambda: served._queue.unfinished_tasks == 1
                and served._queue.qsize() == 0
            )
            time.sleep(0.05)
            served.resume_writer()
            assert done.wait(5.0)
            record = log.finish(ctx, "update", 200)
        finally:
            log.reset()
        assert reply["result"]["safe"] is True
        stages = record["stages"]
        # The pause is the queue wait; the gate held the op >= 50 ms.
        assert stages["queued"] >= 0.045
        assert {"parse", "queued", "classify", "apply", "publish"} <= set(stages)
        assert record["attrs"]["safe"] is True
        assert sum(stages.values()) + record["unaccounted"] == A(record["dur_s"])

    def test_update_carves_classify_out_of_apply(self, app):
        served = make_session(app)
        log = RequestLog()
        log.configure(slow_threshold_s=0.0)
        try:
            ctx = log.open_request("POST", "/sessions/s/update")
            ctx.mark("parse")
            served.submit("update", {"u": 1, "v": 3, "w": 0.5}, ctx=ctx)
            record = log.finish(ctx, "update", 200)
        finally:
            log.reset()
        stages = record["stages"]
        assert stages["classify"] >= 0.0
        assert stages["apply"] >= 0.0

    def test_applied_log_bound_drops_oldest_and_counts(self, app):
        served = make_session(app, log_bound=2)
        new_edges = [(1, 3, 0.5), (0, 3, 2.5), (3, 1, 1.0)]
        for u, v, w in new_edges:
            served.submit("batch", {"insertions": [[u, v, w]]})
        log = served.applied_log()
        assert log["dropped"] == 1
        assert [e["seq"] for e in log["log"]] == [2, 3]
        stats = served.stats()
        assert stats["log_bound"] == 2
        assert stats["log_dropped"] == 1

    def test_log_bound_must_be_positive(self, app):
        with pytest.raises(ValueError):
            make_session(app, log_bound=0)


class TestSpanLinksAndAnchor:
    def test_linked_attrs_land_on_root_spans_and_events_only(self):
        sink = MemorySink()
        tracer = Tracer([sink])
        with tracer.linked(request_id="r000042"):
            root = tracer.start("run", "incremental")
            child = tracer.start("phase", "inner")
            tracer.event("tick")  # under an open span: no link
            tracer.end(child)
            tracer.end(root)
            tracer.event("express", safe=True)  # root level: linked
        tracer.event("late")  # outside linked(): no link
        by_name = {s.name: s for s in sink.spans}
        assert by_name["incremental"].attrs["request_id"] == "r000042"
        assert "request_id" not in by_name["inner"].attrs
        events = {e.name: e for e in sink.events}
        assert "request_id" not in events["tick"].attrs
        assert events["express"].attrs["request_id"] == "r000042"
        assert events["express"].attrs["safe"] is True
        assert "request_id" not in events["late"].attrs

    def test_anchor_reaches_memory_sink(self):
        sink = MemorySink()
        tracer = Tracer([sink])
        assert sink.anchor is not None
        assert sink.anchor["epoch_s"] == tracer.epoch_s
        assert sink.anchor["perf_counter"] == tracer.clock_origin

    def test_anchor_is_second_line_of_jsonl_trace(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer([JsonlSink(path)])
        with tracer.span("run", "r"):
            pass
        tracer.close()
        with open(path, "r", encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle]
        assert lines[0]["type"] == "header"
        assert lines[1]["type"] == "anchor"
        assert lines[1]["epoch_s"] == A(tracer.epoch_s)
        problems = validate_trace(path)
        assert problems == []
        trace = read_trace(path)
        assert trace.anchor is not None
        assert trace.anchor["perf_counter"] == A(tracer.clock_origin)


class TestHttpRequestTracing:
    @pytest.fixture
    def traced_server(self, tmp_path):
        access = str(tmp_path / "access.jsonl")
        trace = str(tmp_path / "trace.jsonl")
        REQUEST_LOG.configure(path=access, slow_threshold_s=0.0)
        REGISTRY.enable().reset()
        tracer = Tracer([JsonlSink(trace)])
        app = ServeApp(accelerator=Accelerator(tracer=tracer))
        server = ServeServer(app, port=0).start()
        try:
            yield HttpClient(server.url), access, trace, tracer
        finally:
            server.stop()
            tracer.close()
            REQUEST_LOG.reset()
            REGISTRY.disable().reset()

    def drive(self, client):
        status, _ = client.post(
            "/sessions",
            {"edges": [list(e) for e in EDGES], "algorithm": "sssp", "name": "s"},
        )
        assert status == 201
        status, _ = client.post("/sessions/s/ingest", {"insertions": [[1, 3, 0.5]]})
        assert status == 200
        status, _ = client.post("/sessions/s/update", {"u": 0, "v": 3, "w": 0.1})
        assert status == 200
        status, _ = client.get("/sessions/s/read?vertices=3")
        assert status == 200
        # finish() runs after the response bytes go out: wait for the
        # last record to land before scraping or analyzing.
        wait_until(
            lambda: REQUEST_LOG.debug_payload()["requests_total"] >= 4
        )

    def test_debug_requests_payload(self, traced_server):
        client, _, _, _ = traced_server
        self.drive(client)
        status, payload = client.get("/debug/requests")
        assert status == 200
        assert payload["enabled"] is True
        # The four driven requests (the /debug scrape itself is counted
        # only after its payload is built).
        assert payload["requests_total"] >= 4
        assert payload["slow_total"] >= 4  # threshold 0: everything slow
        ring_routes = {r["route"] for r in payload["ring"]}
        assert {"session", "ingest", "update", "read"} <= ring_routes
        for record in payload["ring"]:
            assert record["stages"]
            assert record["unaccounted"] >= 0.0
        histograms = {f["name"] for f in payload["histograms"]}
        assert "repro_serve_stage_latency_seconds" in histograms
        assert "repro_serve_request_latency_seconds" in histograms

    def test_access_log_joins_engine_trace_end_to_end(self, traced_server):
        client, access, trace, tracer = traced_server
        self.drive(client)
        REQUEST_LOG.flush()
        tracer.flush()
        analysis = analyze_requests(access, trace_path=trace)
        assert analysis["errors"] == []
        assert analysis["requests"] >= 4
        engine = analysis["engine"]
        # Both writes matched: the ingest batch via its run span's
        # request_id link, the safe update via its express event.
        assert engine["writes"] == 2
        assert engine["matched"] == 2
        assert engine["coverage"] == 1.0
        assert engine["run_spans_linked"] >= 1
        assert engine["express_events_linked"] >= 1
        # Both files carry wall-clock anchors taken moments apart.
        assert abs(engine["clock_offset_s"]) < 5.0
        table = render_request_table(analysis)
        assert "engine join" in table


class TestHistogramExemplars:
    def test_observe_records_last_exemplar_per_bucket(self):
        h = Histogram("h", [0.1, 1.0])
        h.observe(0.05, exemplar="a")
        h.observe(0.07, exemplar="b")  # same bucket: last write wins
        h.observe(5.0, exemplar="c")  # overflow bucket
        h.observe(0.5)  # no exemplar: bucket untouched
        assert h.exemplars[0] == {"id": "b", "value": 0.07}
        assert h.exemplars[2] == {"id": "c", "value": 5.0}
        assert 1 not in h.exemplars
