"""Static (GraphPulse) engine tests: Algorithm 1 semantics and metrics."""

import math

import numpy as np
import pytest

from repro import reference
from repro.algorithms import make_algorithm
from repro.core.config import AcceleratorConfig
from repro.core.engine import GraphPulseEngine
from repro.graph.csr import CSRGraph

from conftest import assert_states_match, make_graph_for


ALL_ALGORITHMS = ["sssp", "sswp", "bfs", "cc", "pagerank", "adsorption"]


class TestCorrectness:
    @pytest.mark.parametrize("name", ALL_ALGORITHMS)
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_matches_reference(self, name, seed):
        algorithm = make_algorithm(name, source=0)
        graph = make_graph_for(algorithm, seed=seed)
        result = GraphPulseEngine(algorithm).compute(graph.snapshot())
        expected = reference.compute_reference(algorithm, graph.snapshot())
        assert_states_match(algorithm, result.states, expected, f"{name}/{seed}")

    def test_unreachable_vertices_stay_identity(self):
        graph = CSRGraph(4, [(0, 1, 1.0)])  # 2 and 3 unreachable
        algorithm = make_algorithm("sssp", source=0)
        result = GraphPulseEngine(algorithm).compute(graph)
        assert result.states[2] == math.inf
        assert result.states[3] == math.inf

    def test_single_vertex_graph(self):
        graph = CSRGraph(1, [])
        result = GraphPulseEngine(make_algorithm("sssp", source=0)).compute(graph)
        assert result.states[0] == 0.0

    def test_empty_graph_pagerank(self):
        graph = CSRGraph(3, [])
        result = GraphPulseEngine(make_algorithm("pagerank")).compute(graph)
        assert np.allclose(result.states, 0.15)

    def test_chain_graph_bfs(self):
        graph = CSRGraph(5, [(i, i + 1, 1.0) for i in range(4)])
        result = GraphPulseEngine(make_algorithm("bfs", source=0)).compute(graph)
        assert list(result.states) == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_cycle_terminates(self):
        graph = CSRGraph(3, [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)])
        result = GraphPulseEngine(make_algorithm("sssp", source=0)).compute(graph)
        assert list(result.states) == [0.0, 1.0, 2.0]

    def test_parallel_paths_pick_shortest(self):
        graph = CSRGraph(3, [(0, 1, 10.0), (0, 2, 1.0), (2, 1, 2.0)])
        result = GraphPulseEngine(make_algorithm("sssp", source=0)).compute(graph)
        assert result.states[1] == 3.0

    def test_recompute_resets_state(self):
        """A second compute() starts fresh, not from the previous result."""
        algorithm = make_algorithm("sssp", source=0)
        engine = GraphPulseEngine(algorithm)
        first = engine.compute(CSRGraph(3, [(0, 1, 5.0)]))
        second = engine.compute(CSRGraph(3, [(0, 1, 2.0)]))
        assert first.states[1] == 5.0
        assert second.states[1] == 2.0


class TestMetrics:
    def test_work_counters_populated(self):
        algorithm = make_algorithm("sssp", source=0)
        graph = make_graph_for(algorithm, seed=4)
        result = GraphPulseEngine(algorithm).compute(graph.snapshot())
        total = result.metrics.total
        assert total.events_processed > 0
        assert total.edges_read > 0
        assert total.vertex_reads >= total.events_processed
        assert result.metrics.vertex_accesses > 0

    def test_rounds_counted(self):
        algorithm = make_algorithm("bfs", source=0)
        graph = CSRGraph(5, [(i, i + 1, 1.0) for i in range(4)])
        result = GraphPulseEngine(algorithm).compute(graph)
        # One round per BFS level plus the seeding round's processing.
        assert result.num_rounds >= 4

    def test_memory_utilization_bounded(self):
        algorithm = make_algorithm("sssp", source=0)
        graph = make_graph_for(algorithm, seed=5)
        result = GraphPulseEngine(algorithm).compute(graph.snapshot())
        assert 0.0 < result.metrics.memory_utilization() <= 1.0

    def test_events_generated_at_least_processed_minus_seeds(self):
        algorithm = make_algorithm("cc")
        graph = make_graph_for(algorithm, seed=6)
        result = GraphPulseEngine(algorithm).compute(graph.snapshot())
        total = result.metrics.total
        # Every processed event was either a seed or generated earlier,
        # modulo coalescing which merges several into one.
        assert total.events_generated + graph.num_vertices >= total.events_processed

    def test_summary_keys(self):
        algorithm = make_algorithm("sssp", source=0)
        graph = make_graph_for(algorithm, seed=7)
        summary = GraphPulseEngine(algorithm).compute(graph.snapshot()).metrics.summary()
        for key in ("events_processed", "vertex_accesses", "memory_utilization"):
            assert key in summary


class TestConfiguration:
    def test_custom_config_respected(self):
        config = AcceleratorConfig(queue_row_vertices=4)
        engine = GraphPulseEngine(make_algorithm("sssp", source=0), config)
        assert engine.core.config.queue_row_vertices == 4

    def test_graphpulse_event_size_used_for_capacity(self):
        config = AcceleratorConfig()
        engine = GraphPulseEngine(make_algorithm("sssp", source=0), config)
        assert engine.core.event_bytes == config.event_bytes_graphpulse

    def test_algorithm_property(self):
        algorithm = make_algorithm("sssp", source=0)
        assert GraphPulseEngine(algorithm).algorithm is algorithm
