"""Tests for the configuration dataclasses and policy descriptors."""

import pytest

from repro.core.config import (
    AcceleratorConfig,
    SoftwareConfig,
    table1_rows,
)
from repro.core.policies import DeletePolicy


class TestAcceleratorConfig:
    def test_table1_defaults(self):
        config = AcceleratorConfig()
        assert config.num_processors == 8
        assert config.clock_ghz == 1.0
        assert config.queue_bytes == 64 * 1024 * 1024
        assert config.dram_channels == 4
        assert config.dram_channel_gbps == 17.0

    def test_queue_capacity(self):
        config = AcceleratorConfig(queue_bytes=1024)
        assert config.queue_capacity_vertices(8) == 128
        assert config.queue_capacity_vertices(14) == 73

    def test_dram_bytes_per_cycle(self):
        config = AcceleratorConfig(dram_channels=4, dram_channel_gbps=17.0, clock_ghz=1.0)
        assert config.dram_bytes_per_cycle() == pytest.approx(68.0)

    def test_dram_bytes_scale_with_clock(self):
        fast_clock = AcceleratorConfig(clock_ghz=2.0)
        assert fast_clock.dram_bytes_per_cycle() == pytest.approx(34.0)

    def test_with_overrides(self):
        config = AcceleratorConfig().with_overrides(num_processors=16)
        assert config.num_processors == 16
        assert config.queue_bytes == AcceleratorConfig().queue_bytes

    def test_frozen(self):
        with pytest.raises(Exception):
            AcceleratorConfig().num_processors = 4

    def test_event_size_ordering(self):
        config = AcceleratorConfig()
        assert (
            config.event_bytes_graphpulse
            < config.event_bytes_jetstream
            < config.event_bytes_dap
        )


class TestSoftwareConfig:
    def test_table1_defaults(self):
        config = SoftwareConfig()
        assert config.num_cores == 36
        assert config.clock_ghz == 3.0
        assert config.dram_channel_gbps == 19.0

    def test_effective_cores_floor(self):
        config = SoftwareConfig(num_cores=1, parallel_efficiency=0.1)
        assert config.effective_cores() == 1.0


class TestTable1Rows:
    def test_three_rows(self):
        rows = table1_rows()
        assert [r["item"] for r in rows] == [
            "Compute Unit",
            "On-chip memory",
            "Off-chip Bandwidth",
        ]

    def test_values_match_paper(self):
        rows = {r["item"]: r for r in table1_rows()}
        assert rows["Compute Unit"]["software"] == "36x Intel Core i9 @3GHz"
        assert rows["Compute Unit"]["jetstream"] == "8x JetStream Processor @1GHz"
        assert "64MB eDRAM" in rows["On-chip memory"]["jetstream"]
        assert "DDR3" in rows["Off-chip Bandwidth"]["jetstream"]


class TestDeletePolicy:
    def test_dependency_tracking(self):
        assert DeletePolicy.DAP.tracks_dependency
        assert not DeletePolicy.VAP.tracks_dependency
        assert not DeletePolicy.BASE.tracks_dependency

    def test_delete_coalescing(self):
        assert DeletePolicy.BASE.coalesces_deletes
        assert DeletePolicy.VAP.coalesces_deletes
        assert not DeletePolicy.DAP.coalesces_deletes

    def test_event_bytes(self):
        config = AcceleratorConfig()
        assert DeletePolicy.DAP.event_bytes(config) == config.event_bytes_dap
        assert DeletePolicy.VAP.event_bytes(config) == config.event_bytes_jetstream
        assert DeletePolicy.BASE.event_bytes(config) == config.event_bytes_jetstream

    def test_round_trip_by_value(self):
        for policy in DeletePolicy:
            assert DeletePolicy(policy.value) is policy
