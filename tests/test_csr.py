"""Unit tests for the CSR graph substrate."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph, edges_from_arrays


@pytest.fixture
def triangle() -> CSRGraph:
    return CSRGraph(3, [(0, 1, 2.0), (1, 2, 3.0), (2, 0, 4.0)])


class TestConstruction:
    def test_empty_graph(self):
        graph = CSRGraph(0, [])
        assert graph.num_vertices == 0
        assert graph.num_edges == 0
        assert list(graph.edges()) == []

    def test_vertices_without_edges(self):
        graph = CSRGraph(5, [])
        assert graph.num_vertices == 5
        assert all(graph.out_degree(v) == 0 for v in range(5))
        assert all(graph.in_degree(v) == 0 for v in range(5))

    def test_basic_counts(self, triangle):
        assert triangle.num_vertices == 3
        assert triangle.num_edges == 3

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph(-1, [])

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph(2, [(0, 5, 1.0)])

    def test_negative_vertex_id_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph(2, [(-1, 0, 1.0)])

    def test_from_edge_list_infers_size(self):
        graph = CSRGraph.from_edge_list([(0, 7, 1.0), (3, 2, 1.0)])
        assert graph.num_vertices == 8

    def test_from_edge_list_explicit_size(self):
        graph = CSRGraph.from_edge_list([(0, 1, 1.0)], num_vertices=10)
        assert graph.num_vertices == 10

    def test_edges_from_arrays(self):
        edges = edges_from_arrays([0, 1], [1, 2], [0.5, 1.5])
        assert edges == [(0, 1, 0.5), (1, 2, 1.5)]


class TestTopology:
    def test_out_degree(self, triangle):
        assert [triangle.out_degree(v) for v in range(3)] == [1, 1, 1]

    def test_in_degree(self, triangle):
        assert [triangle.in_degree(v) for v in range(3)] == [1, 1, 1]

    def test_out_edges(self, triangle):
        assert list(triangle.out_edges(0)) == [(1, 2.0)]

    def test_in_edges(self, triangle):
        assert list(triangle.in_edges(0)) == [(2, 4.0)]

    def test_out_in_consistency(self):
        graph = CSRGraph(6, [(0, 1, 1.0), (0, 2, 2.0), (3, 1, 3.0), (4, 5, 4.0)])
        out_view = sorted(
            (u, v, w) for u in range(6) for v, w in graph.out_edges(u)
        )
        in_view = sorted(
            (u, v, w) for v in range(6) for u, w in graph.in_edges(v)
        )
        assert out_view == in_view

    def test_edges_round_trip(self):
        edges = [(0, 1, 1.0), (0, 2, 2.5), (2, 1, 3.0), (1, 0, 4.0)]
        graph = CSRGraph(3, edges)
        assert sorted(graph.edges()) == sorted(edges)

    def test_has_edge(self, triangle):
        assert triangle.has_edge(0, 1)
        assert not triangle.has_edge(1, 0)

    def test_edge_weight(self, triangle):
        assert triangle.edge_weight(1, 2) == 3.0

    def test_edge_weight_missing_raises(self, triangle):
        with pytest.raises(KeyError):
            triangle.edge_weight(1, 0)

    def test_out_neighbors_array(self, triangle):
        assert list(triangle.out_neighbors(0)) == [1]

    def test_neighbors_sorted_by_target(self):
        graph = CSRGraph(4, [(0, 3, 1.0), (0, 1, 1.0), (0, 2, 1.0)])
        assert list(graph.out_neighbors(0)) == [1, 2, 3]


class TestTransforms:
    def test_reversed(self, triangle):
        rev = triangle.reversed()
        assert sorted(rev.edges()) == [(0, 2, 4.0), (1, 0, 2.0), (2, 1, 3.0)]

    def test_reversed_twice_is_identity(self, triangle):
        assert triangle.reversed().reversed() == triangle

    def test_symmetrized_has_both_directions(self):
        graph = CSRGraph(3, [(0, 1, 2.0)]).symmetrized()
        assert graph.has_edge(0, 1) and graph.has_edge(1, 0)

    def test_symmetrized_keeps_existing_weight(self):
        graph = CSRGraph(2, [(0, 1, 2.0), (1, 0, 9.0)]).symmetrized()
        assert graph.edge_weight(1, 0) == 9.0
        assert graph.num_edges == 2

    def test_equality(self):
        a = CSRGraph(3, [(0, 1, 1.0), (1, 2, 2.0)])
        b = CSRGraph(3, [(1, 2, 2.0), (0, 1, 1.0)])
        assert a == b

    def test_inequality(self):
        a = CSRGraph(3, [(0, 1, 1.0)])
        b = CSRGraph(3, [(0, 1, 2.0)])
        assert a != b

    def test_not_hashable(self, triangle):
        with pytest.raises(TypeError):
            hash(triangle)


class TestLocalityHelpers:
    def test_vertex_page(self):
        graph = CSRGraph(2000, [])
        assert graph.vertex_page(0, 2048) == 0
        assert graph.vertex_page(255, 2048) == 0
        assert graph.vertex_page(256, 2048) == 1  # 256 * 8B = 2048

    def test_edge_pages_cover_range(self):
        graph = CSRGraph(3, [(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0)])
        pages = graph.edge_pages(0, 2048)
        assert len(list(pages)) >= 1

    def test_offsets_monotone(self):
        graph = CSRGraph(50, [(i, (i + 1) % 50, 1.0) for i in range(50)])
        assert np.all(np.diff(graph.out_offsets) >= 0)
        assert graph.out_offsets[-1] == graph.num_edges
