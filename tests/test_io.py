"""Unit tests for edge-list and update-stream I/O."""

import pytest

from repro.graph import io
from repro.streams import Edge, UpdateBatch


@pytest.fixture
def edges():
    return [(0, 1, 2.5), (1, 2, 1.0), (2, 0, 3.0)]


class TestTextEdgeList:
    def test_round_trip(self, tmp_path, edges):
        path = tmp_path / "g.txt"
        assert io.write_edge_list(path, edges) == 3
        assert io.read_edge_list(path) == edges

    def test_default_weight(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n2 3\n")
        assert io.read_edge_list(path) == [(0, 1, 1.0), (2, 3, 1.0)]

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n\n0 1 2\n")
        assert io.read_edge_list(path) == [(0, 1, 2.0)]

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 2 3 4\n")
        with pytest.raises(ValueError):
            io.read_edge_list(path)


class TestBinaryEdgeList:
    def test_round_trip(self, tmp_path, edges):
        path = tmp_path / "g.bin"
        assert io.write_binary_edges(path, edges) == 3
        assert io.read_binary_edges(path) == edges

    def test_empty(self, tmp_path):
        path = tmp_path / "g.bin"
        io.write_binary_edges(path, [])
        assert io.read_binary_edges(path) == []

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "g.bin"
        path.write_bytes(b"NOPE" + b"\x00" * 16)
        with pytest.raises(ValueError):
            io.read_binary_edges(path)


class TestUpdateStream:
    def test_round_trip(self, tmp_path):
        batches = [
            UpdateBatch(
                insertions=[Edge(0, 1, 2.0)],
                deletions=[Edge(2, 3, 0.0)],
            ),
            UpdateBatch(insertions=[Edge(4, 5, 1.5)]),
        ]
        path = tmp_path / "stream.txt"
        assert io.write_update_stream(path, batches) == 2
        loaded = io.read_update_stream(path)
        assert len(loaded) == 2
        assert loaded[0].insertions == [Edge(0, 1, 2.0)]
        assert loaded[0].deletions[0].key() == (2, 3)
        assert loaded[1].insertions == [Edge(4, 5, 1.5)]
        assert loaded[1].deletions == []

    def test_record_before_batch_rejected(self, tmp_path):
        path = tmp_path / "stream.txt"
        path.write_text("a 0 1 2\n")
        with pytest.raises(ValueError):
            io.read_update_stream(path)

    def test_bad_record_rejected(self, tmp_path):
        path = tmp_path / "stream.txt"
        path.write_text("batch\nz 0 1\n")
        with pytest.raises(ValueError):
            io.read_update_stream(path)

    def test_empty_stream(self, tmp_path):
        path = tmp_path / "stream.txt"
        path.write_text("")
        assert io.read_update_stream(path) == []
