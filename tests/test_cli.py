"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.graph import generators, io


@pytest.fixture
def edge_file(tmp_path):
    path = tmp_path / "graph.txt"
    io.write_edge_list(path, generators.erdos_renyi(60, 240, seed=3))
    return str(path)


@pytest.fixture
def update_file(tmp_path, edge_file):
    from repro.graph.dynamic import DynamicGraph
    from repro.streams import StreamGenerator

    graph = DynamicGraph.from_edges(io.read_edge_list(edge_file))
    generator = StreamGenerator(graph, seed=4)
    batches = list(generator.stream(8, 3))
    path = tmp_path / "updates.txt"
    io.write_update_stream(path, batches)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_query_args(self):
        args = build_parser().parse_args(
            ["query", "--edges", "x.txt", "--algorithm", "bfs", "--source", "3"]
        )
        assert args.command == "query"
        assert args.algorithm == "bfs"
        assert args.source == 3

    def test_edges_and_dataset_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["query", "--edges", "x.txt", "--dataset", "WK"]
            )

    def test_bad_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["query", "--edges", "x.txt", "--algorithm", "mis"]
            )


class TestQueryCommand:
    def test_selective_query(self, edge_file, capsys):
        assert main(["query", "--edges", edge_file, "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "sssp on 60 vertices" in out
        assert "model time" in out

    def test_accumulative_query(self, edge_file, capsys):
        assert (
            main(["query", "--edges", edge_file, "--algorithm", "pagerank"]) == 0
        )
        out = capsys.readouterr().out
        assert "top 10 vertices by value" in out

    def test_cc_symmetrizes(self, edge_file, capsys):
        assert main(["query", "--edges", edge_file, "--algorithm", "cc"]) == 0
        assert "cc on" in capsys.readouterr().out

    def test_at_versions_shared_prefix(self, edge_file, capsys):
        code = main(
            [
                "query",
                "--edges",
                edge_file,
                "--at-versions",
                "3",
                "--batch-size",
                "10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "common graph" in out
        assert "shared common-graph prefix" in out
        assert "total events:" in out

    def test_at_versions_accumulative_fallback(self, edge_file, capsys):
        code = main(
            [
                "query",
                "--edges",
                edge_file,
                "--algorithm",
                "pagerank",
                "--at-versions",
                "2",
                "--batch-size",
                "6",
            ]
        )
        assert code == 0
        assert "independent per-version" in capsys.readouterr().out


class TestStreamCommand:
    def test_generated_stream(self, edge_file, capsys):
        code = main(
            [
                "stream",
                "--edges",
                edge_file,
                "--batches",
                "2",
                "--batch-size",
                "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "initial evaluation" in out
        assert out.count("\n") >= 4

    def test_stream_from_file(self, edge_file, update_file, capsys):
        code = main(
            [
                "stream",
                "--edges",
                edge_file,
                "--updates",
                update_file,
                "--batches",
                "3",
            ]
        )
        assert code == 0
        assert "batch" in capsys.readouterr().out

    def test_compare_cold(self, edge_file, capsys):
        code = main(
            [
                "stream",
                "--edges",
                edge_file,
                "--batches",
                "1",
                "--batch-size",
                "6",
                "--compare-cold",
            ]
        )
        assert code == 0
        assert "advantage" in capsys.readouterr().out

    def test_policy_choice(self, edge_file, capsys):
        code = main(
            [
                "stream",
                "--edges",
                edge_file,
                "--batches",
                "1",
                "--batch-size",
                "4",
                "--policy",
                "vap",
            ]
        )
        assert code == 0

    def test_delete_policy_commongraph_alias(self, edge_file, capsys):
        code = main(
            [
                "stream",
                "--edges",
                edge_file,
                "--batches",
                "2",
                "--batch-size",
                "8",
                "--insertion-ratio",
                "0.3",
                "--delete-policy",
                "commongraph",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "resets 0" in out or "resets=0" in out or "batch" in out


class TestTraceFlags:
    def test_stream_writes_valid_trace(self, edge_file, tmp_path, capsys):
        from repro.obs import read_trace, validate_trace

        trace_path = tmp_path / "run.jsonl"
        code = main(
            [
                "stream",
                "--edges",
                edge_file,
                "--batches",
                "2",
                "--batch-size",
                "8",
                "--trace",
                str(trace_path),
            ]
        )
        assert code == 0
        assert validate_trace(trace_path) == []
        trace = read_trace(trace_path)
        # initial + 2 batches.
        assert len(trace.runs()) == 3
        out = capsys.readouterr().out
        assert "trace written to" in out
        assert "Mcyc/s" in out  # correlation table printed

    def test_query_trace_and_progress(self, edge_file, tmp_path, capsys):
        from repro.obs import validate_trace

        trace_path = tmp_path / "q.jsonl"
        code = main(
            [
                "query",
                "--edges",
                edge_file,
                "--trace",
                str(trace_path),
                "--progress",
            ]
        )
        assert code == 0
        assert validate_trace(trace_path) == []
        err = capsys.readouterr().err
        assert "[trace] run initial started" in err

    def test_untraced_run_unchanged(self, edge_file, capsys):
        assert main(["query", "--edges", edge_file]) == 0
        out = capsys.readouterr().out
        assert "trace written" not in out


class TestTraceCommand:
    def make_trace(self, edge_file, tmp_path):
        path = tmp_path / "t.jsonl"
        assert (
            main(
                [
                    "stream",
                    "--edges",
                    edge_file,
                    "--batches",
                    "1",
                    "--batch-size",
                    "6",
                    "--trace",
                    str(path),
                ]
            )
            == 0
        )
        return path

    def test_summarize_round_trips(self, edge_file, tmp_path, capsys):
        path = self.make_trace(edge_file, tmp_path)
        capsys.readouterr()
        assert main(["trace", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Mcyc/s" in out
        assert "initial" in out and "reevaluation" in out

    def test_validate_accepts_good_trace(self, edge_file, tmp_path, capsys):
        path = self.make_trace(edge_file, tmp_path)
        capsys.readouterr()
        assert main(["trace", "validate", str(path)]) == 0
        assert "valid trace" in capsys.readouterr().out

    def test_validate_rejects_bad_trace(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("{}\n")
        assert main(["trace", "validate", str(path)]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_trace_requires_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])


class TestDatasetsCommand:
    def test_lists_all(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("Wikipedia", "Facebook", "LiveJournal", "UK-2002", "Twitter"):
            assert name in out
