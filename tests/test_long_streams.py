"""Long-stream endurance tests: many batches, all systems, one truth.

The paper's deployment model is a *standing* query processing updates
indefinitely (Fig. 1); these tests drive longer streams than the unit
tests and check that no drift, stale dependency, or leaked state ever
appears — for every policy, and in lockstep across JetStream, KickStarter,
and the cold-start oracle.
"""

import numpy as np
import pytest

from repro import reference
from repro.algorithms import make_algorithm
from repro.baselines import KickStarter
from repro.core.policies import DeletePolicy
from repro.core.streaming import JetStreamEngine
from repro.streams import StreamGenerator

from conftest import assert_states_match, make_graph_for


class TestTenBatchStreams:
    @pytest.mark.parametrize("name", ["sssp", "sswp", "bfs", "cc"])
    def test_selective_ten_batches(self, name):
        algorithm = make_algorithm(name, source=0)
        graph = make_graph_for(algorithm, n=70, m=280, seed=71)
        engine = JetStreamEngine(graph, algorithm)
        engine.initial_compute()
        stream = StreamGenerator(graph, seed=72, insertion_ratio=0.6)
        for i in range(10):
            engine.apply_batch(stream.next_batch(10))
            expected = reference.compute_reference(algorithm, graph.snapshot())
            assert_states_match(algorithm, engine.states, expected, f"batch {i}")

    def test_pagerank_ten_batches_with_drift_budget(self):
        algorithm = make_algorithm("pagerank", tolerance=1e-7)
        graph = make_graph_for(algorithm, n=70, m=280, seed=73)
        engine = JetStreamEngine(graph, algorithm)
        engine.initial_compute()
        stream = StreamGenerator(graph, seed=74, insertion_ratio=0.6)
        for i in range(10):
            engine.apply_batch(stream.next_batch(10))
            expected = reference.pagerank(graph.snapshot())
            # Truncation drift accumulates linearly in the batch count.
            budget = 1e-7 * 500 * (i + 2)
            assert np.allclose(engine.states, expected, atol=budget, rtol=budget), i

    def test_policies_stay_in_lockstep(self):
        """All three policies applied to identical streams must agree on
        every intermediate result, not just the final one."""
        seeds = dict(graph=75, stream=76)
        engines = {}
        streams = {}
        for policy in DeletePolicy:
            algorithm = make_algorithm("sssp", source=0)
            graph = make_graph_for(algorithm, n=70, m=280, seed=seeds["graph"])
            engines[policy] = JetStreamEngine(graph, algorithm, policy=policy)
            engines[policy].initial_compute()
            streams[policy] = StreamGenerator(
                graph, seed=seeds["stream"], insertion_ratio=0.5
            )
        for i in range(6):
            states = []
            for policy in DeletePolicy:
                result = engines[policy].apply_batch(streams[policy].next_batch(12))
                states.append(result.states)
            assert np.array_equal(states[0], states[1]), f"batch {i}"
            assert np.array_equal(states[1], states[2]), f"batch {i}"

    def test_jetstream_kickstarter_lockstep(self):
        algorithm_name = "sswp"
        graph_a = make_graph_for(make_algorithm(algorithm_name), n=70, m=280, seed=77)
        graph_b = make_graph_for(make_algorithm(algorithm_name), n=70, m=280, seed=77)
        jet = JetStreamEngine(graph_a, make_algorithm(algorithm_name, source=0))
        kick = KickStarter(graph_b, make_algorithm(algorithm_name, source=0))
        jet.initial_compute()
        kick.initial_compute()
        stream_a = StreamGenerator(graph_a, seed=78, insertion_ratio=0.4)
        stream_b = StreamGenerator(graph_b, seed=78, insertion_ratio=0.4)
        for i in range(8):
            ra = jet.apply_batch(stream_a.next_batch(10))
            rb = kick.apply_batch(stream_b.next_batch(10))
            assert np.array_equal(ra.states, rb.states), f"batch {i}"


class TestStressCompositions:
    def test_alternating_extremes(self):
        """Whiplash between pure-insertion and pure-deletion batches."""
        algorithm = make_algorithm("sssp", source=0)
        graph = make_graph_for(algorithm, n=60, m=240, seed=79)
        engine = JetStreamEngine(graph, algorithm)
        engine.initial_compute()
        stream = StreamGenerator(graph, seed=80)
        for i in range(8):
            ratio = 1.0 if i % 2 == 0 else 0.0
            engine.apply_batch(stream.next_batch(10, insertion_ratio=ratio))
            expected = reference.sssp(graph.snapshot(), 0)
            assert np.array_equal(engine.states, expected), f"batch {i}"

    def test_heavy_deletion_shrinks_graph(self):
        """Delete far more than is inserted until the graph thins out."""
        algorithm = make_algorithm("bfs", source=0)
        graph = make_graph_for(algorithm, n=60, m=300, seed=81)
        engine = JetStreamEngine(graph, algorithm)
        engine.initial_compute()
        stream = StreamGenerator(graph, seed=82)
        for i in range(6):
            engine.apply_batch(stream.next_batch(30, insertion_ratio=0.1))
            expected = reference.bfs(graph.snapshot(), 0)
            assert np.array_equal(engine.states, expected), f"batch {i}"
        assert graph.num_edges < 300

    def test_growth_only_stream(self):
        algorithm = make_algorithm("cc")
        graph = make_graph_for(algorithm, n=40, m=120, seed=83)
        engine = JetStreamEngine(graph, algorithm)
        engine.initial_compute()
        stream = StreamGenerator(graph, seed=84)
        for _ in range(5):
            engine.apply_batch(stream.next_batch(15, insertion_ratio=1.0))
        expected = reference.connected_components(graph.snapshot())
        assert np.array_equal(engine.states, expected)
