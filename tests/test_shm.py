"""Shared-memory arena and process-backend lifecycle tests.

The hard invariant: **no leaked ``/dev/shm`` segments** — after normal
runs, after exceptions, and after worker crashes. The main process is the
only segment owner (:class:`repro.core.shm.SharedArena`); workers only
attach, so whatever happens to a worker the owner's ``close()``/finalizer
removes every name it created. :func:`leaked_system_segments` is the
system-level probe these tests (and CI) pin that on.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.algorithms import make_algorithm
from repro.core import parallel
from repro.core.engine import GraphPulseEngine
from repro.core.parallel import (
    ProcessShardExecutor,
    ShardWorkerError,
    acquire_shard_executor,
    release_shard_executor,
)
from repro.core.policies import DeletePolicy
from repro.core.shm import (
    AttachmentCache,
    SharedArena,
    attach,
    leaked_system_segments,
    live_segment_names,
)
from repro.core.streaming import JetStreamEngine
from repro.streams import StreamGenerator

from conftest import make_graph_for


def assert_no_leaks(context: str = "") -> None:
    __tracebackhide__ = True
    leaks = leaked_system_segments()
    assert not leaks, f"{context}: leaked shared-memory segments {leaks}"


class TestSharedArena:
    def test_roundtrip_and_unlink(self):
        arena = SharedArena(tag="test")
        filled = arena.full(8, 3.5, np.float64)
        assert filled.array.shape == (8,)
        assert np.all(filled.array == 3.5)
        source = np.arange(6, dtype=np.int64)
        copied = arena.from_array(source)
        assert np.array_equal(copied.array, source)
        empty = arena.empty((2, 3), np.float64)
        assert empty.array.shape == (2, 3)
        names = arena.live_names()
        assert len(names) == 3
        assert set(names) <= set(live_segment_names())
        arena.close()
        assert arena.live_names() == []
        assert_no_leaks("arena close")

    def test_close_is_idempotent_and_create_after_close_fails(self):
        from repro.core.shm import ShmError

        arena = SharedArena()
        arena.full(4, 0, np.int64)
        arena.close()
        arena.close()
        with pytest.raises(ShmError):
            arena.empty(4, np.int64)
        assert_no_leaks("idempotent close")

    def test_zero_sized_segments(self):
        # Empty graphs/queues produce zero-element arrays; POSIX shm
        # refuses zero-byte segments, so the arena must round up.
        arena = SharedArena()
        segment = arena.empty(0, np.float64)
        assert segment.array.shape == (0,)
        arena.close()
        assert_no_leaks("zero-size")

    def test_release_unlinks_one_segment(self):
        arena = SharedArena()
        first = arena.full(4, 1, np.int64)
        second = arena.full(4, 2, np.int64)
        arena.release(first)
        assert arena.live_names() == [second.name]
        arena.close()
        assert_no_leaks("single release")

    def test_attach_sees_owner_writes(self):
        arena = SharedArena()
        segment = arena.from_array(np.arange(5, dtype=np.float64))
        array, handle = attach(segment.spec)
        try:
            assert np.array_equal(array, segment.array)
            segment.array[2] = 99.0
            assert array[2] == 99.0
            array[3] = -1.0
            assert segment.array[3] == -1.0
        finally:
            del array
            handle.close()
            arena.close()
        assert_no_leaks("attach")

    def test_attachment_cache_retains_only_named(self):
        arena = SharedArena()
        keep = arena.full(4, 1, np.int64)
        drop = arena.full(4, 2, np.int64)
        cache = AttachmentCache()
        kept = cache.attach(keep.spec)
        cache.attach(drop.spec)
        cache.retain([keep.name])
        # The kept mapping stays valid; re-attach of the kept name is a
        # cache hit (same array object).
        assert cache.attach(keep.spec) is kept
        cache.close_all()
        arena.close()
        assert_no_leaks("cache retain")


class TestEngineLifecycle:
    def test_normal_run_unlinks_on_close(self):
        algorithm = make_algorithm("pagerank")
        graph = make_graph_for(algorithm, n=60, m=240, seed=7)
        engine = GraphPulseEngine(
            make_algorithm("pagerank"),
            engine="sharded",
            num_engines=4,
            backend="process",
        )
        result = engine.compute(graph.snapshot())
        assert live_segment_names(), "process backend should own live segments"
        engine.close()
        # Results stay readable after close (states copied off-shm).
        assert np.isfinite(result.states).all()
        assert_no_leaks("normal run")

    def test_streaming_run_with_deletes_unlinks_on_close(self):
        algorithm = make_algorithm("sssp", source=0)
        graph = make_graph_for(algorithm, n=50, m=200, seed=11)
        with JetStreamEngine(
            graph,
            algorithm,
            policy=DeletePolicy.DAP,
            engine="sharded",
            num_engines=4,
            backend="process",
        ) as engine:
            engine.initial_compute()
            stream = StreamGenerator(graph, seed=12)
            for _ in range(2):
                engine.apply_batch(stream.next_batch(10))
        assert_no_leaks("streaming run")

    def test_thread_backend_owns_no_segments(self):
        algorithm = make_algorithm("pagerank")
        graph = make_graph_for(algorithm, n=40, m=160, seed=3)
        engine = GraphPulseEngine(
            make_algorithm("pagerank"), engine="sharded", num_engines=4
        )
        engine.compute(graph.snapshot())
        assert live_segment_names() == []
        engine.close()
        assert_no_leaks("thread backend")

    def test_worker_crash_raises_and_cleans(self):
        algorithm = make_algorithm("sssp", source=0)
        graph = make_graph_for(algorithm, n=50, m=200, seed=21)
        engine = JetStreamEngine(
            graph,
            algorithm,
            engine="sharded",
            num_engines=4,
            backend="process",
        )
        try:
            engine.initial_compute()
            executor = engine.core._shard_executor
            assert executor is not None and executor.alive()
            for proc in executor._procs:
                os.kill(proc.pid, signal.SIGKILL)
            deadline = time.monotonic() + 10.0
            while any(p.is_alive() for p in executor._procs):
                assert time.monotonic() < deadline, "workers did not die"
                time.sleep(0.01)
            stream = StreamGenerator(graph, seed=22)
            with pytest.raises(ShardWorkerError):
                engine.apply_batch(stream.next_batch(10))
        finally:
            engine.close()
        assert_no_leaks("worker crash")

    def test_worker_exception_surfaces_and_cleans(self):
        # A bind referencing a nonexistent segment makes the worker raise;
        # the error crosses the pipe as ShardWorkerError and the worker
        # stays alive for the next request (it never owns segments).
        executor = ProcessShardExecutor(workers=1)
        try:
            payload = {
                "algorithm": make_algorithm("sssp", source=0),
                "policy": DeletePolicy.BASE,
                "arrays": {
                    "states": {
                        "name": "repro-shm-does-not-exist",
                        "shape": (4,),
                        "dtype": "<f8",
                    }
                },
            }
            with pytest.raises(ShardWorkerError):
                executor.bind(payload)
            assert executor.alive()
        finally:
            executor.close()
        assert_no_leaks("worker exception")


class TestWarmPoolCache:
    def test_process_pool_parked_and_revived(self):
        first = acquire_shard_executor("process", 1)
        try:
            release_shard_executor(first)
            second = acquire_shard_executor("process", 1)
            assert second is first, "warm pool should be revived, not respawned"
        finally:
            release_shard_executor(first)

    def test_dead_parked_pool_is_not_revived(self):
        first = acquire_shard_executor("process", 1)
        release_shard_executor(first)
        for proc in first._procs:
            os.kill(proc.pid, signal.SIGKILL)
        deadline = time.monotonic() + 10.0
        while any(p.is_alive() for p in first._procs):
            assert time.monotonic() < deadline
            time.sleep(0.01)
        second = acquire_shard_executor("process", 1)
        try:
            assert second is not first
            assert second.alive()
        finally:
            release_shard_executor(second)

    def test_thread_executor_closes_on_release(self):
        executor = acquire_shard_executor("thread", 2)
        assert executor.backend == "thread"
        release_shard_executor(executor)
        assert not executor.alive()

    def test_engine_reuses_warm_pool_across_instances(self):
        algorithm = make_algorithm("pagerank")
        graph = make_graph_for(algorithm, n=40, m=160, seed=3)
        first = GraphPulseEngine(
            make_algorithm("pagerank"),
            engine="sharded",
            num_engines=4,
            backend="process",
        )
        first.compute(graph.snapshot())
        executor = first.core._shard_executor
        first.close()
        second = GraphPulseEngine(
            make_algorithm("pagerank"),
            engine="sharded",
            num_engines=4,
            backend="process",
        )
        second.compute(graph.snapshot())
        assert second.core._shard_executor is executor
        second.close()
        assert_no_leaks("warm reuse")


class TestBackendValidation:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            GraphPulseEngine(
                make_algorithm("sssp", source=0),
                engine="sharded",
                backend="fiber",
            )

    def test_process_backend_requires_sharded_engine(self):
        with pytest.raises(ValueError):
            GraphPulseEngine(
                make_algorithm("sssp", source=0),
                engine="vectorized",
                backend="process",
            )
