"""Tests for the ``repro serve`` streaming service (host daemon).

Covers the serving contract end to end:

* snapshot-isolated reads — the torn-read checker replays the service's
  applied-write log through an oracle :class:`~repro.host.Session` and
  requires every ``(seq, digest)`` a concurrent reader observed to match
  the oracle's digest at that seq;
* bounded-queue backpressure — 429 ``QUEUE_FULL`` exactly at the
  configured bound, driven deterministically via the writer gate;
* graceful shutdown — queued ops drain and answer their clients before
  the session is torn down;
* the HTTP protocol surface (routes, error codes, metrics mount).
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.graph import generators
from repro.host import Accelerator
from repro.obs.metrics import REGISTRY
from repro.serve import (
    DEFAULT_QUEUE_BOUND,
    ReadSnapshot,
    ServeApp,
    ServeError,
    ServeServer,
)

EDGES = [(0, 1, 2.0), (1, 2, 3.0), (0, 2, 9.0), (2, 3, 1.0)]


def state_digest(states) -> str:
    """Same content hash :class:`ReadSnapshot` publishes."""
    return hashlib.sha1(np.array(states, copy=True).tobytes()).hexdigest()


def wait_until(predicate, timeout_s: float = 5.0) -> None:
    deadline = time.monotonic() + timeout_s
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached within timeout")
        time.sleep(0.001)


@pytest.fixture
def app():
    app = ServeApp()
    yield app
    app.close()


def make_session(app, name="s", queue_bound=None, edges=EDGES, algorithm="sssp"):
    return app.create_session(
        edges, algorithm, name=name, source=0, queue_bound=queue_bound
    )


class TestServeSessionCore:
    def test_initial_snapshot_is_converged_seq_zero(self, app):
        served = make_session(app)
        snapshot = served.read_snapshot()
        assert snapshot.seq == 0
        assert list(snapshot.states) == [0.0, 2.0, 5.0, 6.0]
        assert snapshot.digest == state_digest(snapshot.states)

    def test_snapshot_states_are_write_protected(self, app):
        snapshot = make_session(app).read_snapshot()
        with pytest.raises(ValueError):
            snapshot.states[0] = 123.0

    def test_batch_write_bumps_seq_and_is_read_your_writes(self, app):
        served = make_session(app)
        reply = served.submit("batch", {"insertions": [[1, 3, 0.5]]})
        assert reply["kind"] == "batch"
        assert reply["seq"] == 1
        snapshot = served.read_snapshot()
        assert snapshot.seq >= reply["seq"]
        assert snapshot.states[3] == 2.5

    def test_express_update_goes_through_the_lane(self, app):
        served = make_session(app)
        reply = served.submit("update", {"u": 1, "v": 3, "w": 0.5})
        assert reply["kind"] == "update"
        assert reply["safe"] is True
        assert served.read_snapshot().states[3] == 2.5
        assert served.session.express_stats()["safe_applied"] == 1

    def test_applied_log_records_ops_in_order(self, app):
        served = make_session(app)
        served.submit("batch", {"insertions": [[1, 3, 0.5]]})
        served.submit("update", {"u": 0, "v": 3, "w": 9.0, "op": "insert"})
        log = served.applied_log()
        assert log["dropped"] == 0
        assert [entry["kind"] for entry in log["log"]] == ["batch", "update"]
        assert [entry["seq"] for entry in log["log"]] == [1, 2]

    def test_writer_error_is_rethrown_in_the_submitter(self, app):
        served = make_session(app)
        # Deleting a non-existent edge is rejected by the store.
        with pytest.raises(ServeError) as exc:
            served.submit("update", {"u": 3, "v": 0, "op": "delete"})
        assert exc.value.status == 409
        assert exc.value.code == "REJECTED"
        # The writer survived: the next op still applies.
        assert served.submit("update", {"u": 1, "v": 3, "w": 0.5})["safe"]

    def test_stats_shape(self, app):
        served = make_session(app)
        stats = served.stats()
        assert stats["algorithm"] == "sssp"
        assert stats["queue_bound"] == DEFAULT_QUEUE_BOUND
        assert stats["applied_seq"] == 0
        assert stats["num_vertices"] == 4
        assert set(stats["express"]) == {
            "safe_applied",
            "engine_fallthroughs",
            "resyncs",
        }
        assert stats["transfers"]["graph_uploads"] > 0


class TestBackpressure:
    def _park_writer_with_inflight_op(self, served, results, errors):
        """Writer parked at the gate holding op A; queue empty again."""
        served.pause_writer()

        def submitter(payload):
            try:
                results.append(served.submit("batch", payload))
            except ServeError as exc:
                errors.append(exc)

        t1 = threading.Thread(target=submitter, args=({"insertions": [[1, 3, 0.5]]},))
        t1.start()
        # unfinished_tasks counts put() calls (no task_done anywhere), so
        # "1 put ever AND queue empty" == the writer dequeued A and is
        # parked at the gate — deterministic, no sleeps.
        wait_until(
            lambda: served._queue.unfinished_tasks == 1
            and served._queue.qsize() == 0
        )
        return t1, submitter

    def test_queue_full_rejects_with_429(self, app):
        served = make_session(app, queue_bound=1)
        results, errors = [], []
        t1, submitter = self._park_writer_with_inflight_op(served, results, errors)
        # Fill the single queue slot with op B.
        t2 = threading.Thread(target=submitter, args=({"insertions": [[0, 3, 9.0]]},))
        t2.start()
        wait_until(lambda: served.queue_depth() == 1)

        with pytest.raises(ServeError) as exc:
            served.submit("batch", {"insertions": [[2, 1, 1.0]]})
        assert exc.value.status == 429
        assert exc.value.code == "QUEUE_FULL"

        served.resume_writer()
        t1.join(timeout=10)
        t2.join(timeout=10)
        assert not errors
        # Both queued ops applied, in order; the rejected one did not.
        assert sorted(r["seq"] for r in results) == [1, 2]
        assert served.read_snapshot().seq == 2

    def test_rejection_is_immediate_not_blocking(self, app):
        served = make_session(app, queue_bound=1)
        results, errors = [], []
        t1, submitter = self._park_writer_with_inflight_op(served, results, errors)
        t2 = threading.Thread(target=submitter, args=({"insertions": [[0, 3, 9.0]]},))
        t2.start()
        wait_until(lambda: served.queue_depth() == 1)

        t0 = time.perf_counter()
        with pytest.raises(ServeError):
            served.submit("update", {"u": 2, "v": 1, "w": 1.0})
        rejected_in = time.perf_counter() - t0
        # put_nowait: the writer is parked, yet the reject returned at once.
        assert rejected_in < 1.0

        served.resume_writer()
        t1.join(timeout=10)
        t2.join(timeout=10)
        assert not errors


class TestGracefulShutdown:
    def test_drain_answers_queued_clients_before_teardown(self, app):
        served = make_session(app, name="drain", queue_bound=4)
        served.pause_writer()
        results, errors = [], []

        def submitter(u, v):
            try:
                results.append(served.submit("batch", {"insertions": [[u, v, 0.5]]}))
            except ServeError as exc:
                errors.append(exc)

        t1 = threading.Thread(target=submitter, args=(1, 3))
        t1.start()
        wait_until(
            lambda: served._queue.unfinished_tasks == 1
            and served._queue.qsize() == 0
        )
        t2 = threading.Thread(target=submitter, args=(0, 3))
        t2.start()
        wait_until(lambda: served.queue_depth() == 1)

        # close_session drains: both clients get real responses.
        app.close_session("drain")
        t1.join(timeout=10)
        t2.join(timeout=10)
        assert not errors
        assert sorted(r["seq"] for r in results) == [1, 2]
        assert served.session.closed

    def test_abandon_fails_queued_ops_but_finishes_inflight(self, app):
        served = make_session(app, name="abort", queue_bound=4)
        served.pause_writer()
        results, errors = [], []

        def submitter(u, v):
            try:
                results.append(served.submit("batch", {"insertions": [[u, v, 0.5]]}))
            except ServeError as exc:
                errors.append(exc)

        t1 = threading.Thread(target=submitter, args=(1, 3))
        t1.start()
        wait_until(
            lambda: served._queue.unfinished_tasks == 1
            and served._queue.qsize() == 0
        )
        t2 = threading.Thread(target=submitter, args=(0, 3))
        t2.start()
        wait_until(lambda: served.queue_depth() == 1)

        app.sessions.pop("abort")
        served.close(drain=False)
        t1.join(timeout=10)
        t2.join(timeout=10)
        # The in-flight op (held by the writer) completes; the queued one
        # is failed fast with 409 CLOSING.
        assert [r["seq"] for r in results] == [1]
        assert len(errors) == 1 and errors[0].code == "CLOSING"

    def test_submit_after_close_rejected(self, app):
        served = make_session(app, name="gone")
        app.close_session("gone")
        with pytest.raises(ServeError) as exc:
            served.submit("batch", {"insertions": [[1, 3, 0.5]]})
        assert exc.value.status == 409 and exc.value.code == "CLOSING"

    def test_app_close_closes_accelerator_and_sessions(self):
        app = ServeApp()
        served = make_session(app)
        app.close()
        assert served.session.closed
        assert app.accelerator.sessions == []
        # Idempotent, and new sessions are refused while closed.
        app.close()
        with pytest.raises(ServeError):
            make_session(app, name="late")


class TestAppRouting:
    def test_read_with_vertices(self, app):
        make_session(app)
        reply = app.handle_read("s", [0, 3])
        assert reply["values"] == {"0": 0.0, "3": 6.0}
        assert reply["seq"] == 0
        assert reply["digest"] == state_digest([0.0, 2.0, 5.0, 6.0])

    def test_read_vertex_out_of_range(self, app):
        make_session(app)
        with pytest.raises(ServeError) as exc:
            app.handle_read("s", [99])
        assert exc.value.status == 400 and exc.value.code == "BAD_VERTEX"

    def test_unknown_session_404(self, app):
        with pytest.raises(ServeError) as exc:
            app.handle_read("nope")
        assert exc.value.status == 404 and exc.value.code == "NO_SESSION"

    def test_duplicate_name_409_and_no_leak(self, app):
        make_session(app, name="dup")
        before = len(app.accelerator.sessions)
        with pytest.raises(ServeError) as exc:
            make_session(app, name="dup")
        assert exc.value.status == 409 and exc.value.code == "EXISTS"
        # The orphaned host session was closed and deregistered.
        assert len(app.accelerator.sessions) == before

    def test_bad_algorithm_400(self, app):
        with pytest.raises(ServeError) as exc:
            make_session(app, algorithm="not-an-algorithm")
        assert exc.value.status == 400 and exc.value.code == "BAD_SESSION"

    def test_update_validation(self, app):
        make_session(app)
        with pytest.raises(ServeError, match="missing field"):
            app.handle_update("s", {"u": 0})
        with pytest.raises(ServeError, match="insert|delete"):
            app.handle_update("s", {"u": 0, "v": 1, "op": "upsert"})


class TestTimeTravelReads:
    def _session_with_writes(self, app, keep_versions=None, writes=3):
        served = app.create_session(
            EDGES, "sssp", name="tt", source=0, keep_versions=keep_versions
        )
        for i in range(writes):
            served.submit("batch", {"insertions": [[0, 4 + i, 0.5 + i]]})
        return served

    def test_version_read_returns_that_versions_states(self, app):
        self._session_with_writes(app)
        latest = app.handle_read("tt")
        assert latest["graph_version"] == 3
        assert latest["historical"] is False
        for version in range(4):
            reply = app.handle_read("tt", version=version)
            assert reply["graph_version"] == version
            assert reply["historical"] is True
        # Version 0 predates every write: the initial converged snapshot.
        v0 = app.handle_read("tt", vertices=[3], version=0)
        assert v0["values"] == {"3": 6.0}
        assert v0["num_vertices"] == 4

    def test_express_singles_are_versioned_too(self, app):
        served = app.create_session(EDGES, "sssp", name="tt", source=0)
        served.submit("update", {"u": 1, "v": 3, "w": 0.5})
        reply = app.handle_read("tt", vertices=[3], version=1)
        assert reply["values"] == {"3": 2.5}
        assert app.handle_read("tt", vertices=[3], version=0)["values"] == {
            "3": 6.0
        }

    def test_eviction_past_retention_is_404(self, app):
        self._session_with_writes(app, keep_versions=2, writes=4)
        with pytest.raises(ServeError) as exc:
            app.handle_read("tt", version=0)
        assert exc.value.status == 404
        assert exc.value.code == "VERSION_EVICTED"
        # Retained versions still read fine.
        assert app.handle_read("tt", version=4)["graph_version"] == 4

    def test_future_version_is_404_no_version(self, app):
        self._session_with_writes(app, writes=1)
        with pytest.raises(ServeError) as exc:
            app.handle_read("tt", version=99)
        assert exc.value.status == 404
        assert exc.value.code == "NO_VERSION"

    def test_stats_surface_history_and_store(self, app):
        served = self._session_with_writes(app, keep_versions=2, writes=4)
        stats = served.stats()
        assert stats["history"] == {
            "keep_versions": 2,
            "versions_held": 2,
            "evicted": 3,
        }
        store = stats["store"]["version_store"]
        assert store["keep_versions"] == 2
        assert store["versions_held"] == 2

    def test_historical_reads_counted_separately(self, app):
        REGISTRY.enable()
        try:
            self._session_with_writes(app, writes=1)
            app.handle_read("tt")
            app.handle_read("tt", version=0)
            app.handle_read("tt", version=1)
            historical = REGISTRY.value(
                "repro_serve_reads_total", kind="historical"
            )
            latest = REGISTRY.value("repro_serve_reads_total", kind="latest")
            assert historical == 2
            assert latest == 1
        finally:
            REGISTRY.disable()


# ---------------------------------------------------------------------------
# HTTP layer
# ---------------------------------------------------------------------------


class HttpClient:
    """urllib wrapper returning ``(status, parsed_json)`` even on errors."""

    def __init__(self, base_url: str):
        self.base = base_url

    def request(self, method, path, body=None, head=False):
        data = None if body is None else json.dumps(body).encode("utf-8")
        request = urllib.request.Request(
            self.base + path, data=data, method=method
        )
        if data is not None:
            request.add_header("Content-Type", "application/json")
        try:
            with urllib.request.urlopen(request, timeout=60) as response:
                raw = response.read()
                if head or not raw:
                    return response.status, raw
                return response.status, json.loads(raw.decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            payload = json.loads(raw.decode("utf-8")) if raw else {}
            return exc.code, payload

    def get(self, path):
        return self.request("GET", path)

    def post(self, path, body=None):
        return self.request("POST", path, body=body)


@pytest.fixture
def server():
    server = ServeServer(ServeApp(), port=0).start()
    yield server
    server.stop()


@pytest.fixture
def client(server):
    return HttpClient(server.url)


def create_http_session(client, name="s", edges=EDGES, **extra):
    body = {"edges": [list(e) for e in edges], "algorithm": "sssp", "name": name}
    body.update(extra)
    return client.post("/sessions", body)


class TestHttpProtocol:
    def test_healthz(self, client):
        status, payload = client.get("/healthz")
        assert status == 200
        assert payload == {"status": "ok", "sessions": []}

    def test_session_create_read_update_close(self, client):
        status, created = create_http_session(client)
        assert status == 201
        assert created == {
            "session": "s",
            "num_vertices": 4,
            "num_edges": 4,
            "seq": 0,
        }

        status, read = client.get("/sessions/s/read?vertices=0,3")
        assert status == 200
        assert read["values"] == {"0": 0.0, "3": 6.0}

        status, ingest = client.post(
            "/sessions/s/ingest", {"insertions": [[1, 3, 0.5]]}
        )
        assert status == 200 and ingest["seq"] == 1

        status, update = client.post(
            "/sessions/s/update", {"u": 0, "v": 3, "w": 0.1}
        )
        assert status == 200 and update["seq"] == 2 and update["safe"]

        # Read-your-writes: the published snapshot includes both writes.
        status, read = client.get("/sessions/s/read?vertices=3")
        assert read["seq"] == 2 and read["values"]["3"] == 0.1

        # Time travel: graph version 1 predates the express update.
        status, old = client.get("/sessions/s/read?vertices=3&version=1")
        assert status == 200
        assert old["historical"] is True
        assert old["graph_version"] == 1 and old["values"]["3"] == 2.5
        status, gone = client.get("/sessions/s/read?version=99")
        assert status == 404 and gone["error"] == "NO_VERSION"
        status, bad = client.get("/sessions/s/read?version=abc")
        assert status == 400 and bad["error"] == "BAD_VERSION"

        status, log = client.get("/sessions/s/log")
        assert [e["kind"] for e in log["log"]] == ["batch", "update"]

        status, closed = client.post("/sessions/s/close")
        assert status == 200 and closed["closed"] is True
        status, _ = client.get("/sessions/s/read")
        assert status == 404

    def test_error_statuses(self, client):
        status, payload = client.get("/sessions/nope/read")
        assert status == 404 and payload["error"] == "NO_SESSION"

        status, payload = client.get("/no/such/route")
        assert status == 404 and payload["error"] == "NO_ROUTE"

        status, payload = client.post("/sessions", {"algorithm": "sssp"})
        assert status == 400 and payload["error"] == "BAD_SESSION"

        create_http_session(client)
        status, payload = client.get("/sessions/s/read?vertices=abc")
        assert status == 400 and payload["error"] == "BAD_VERTEX"
        status, payload = client.post("/sessions/s/update", {"u": 0})
        assert status == 400 and payload["error"] == "BAD_UPDATE"

    def test_bad_json_body(self, server, client):
        create_http_session(client)
        request = urllib.request.Request(
            server.url + "/sessions/s/ingest",
            data=b"this is not json",
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(request, timeout=60)
        assert exc.value.code == 400
        assert json.loads(exc.value.read())["error"] == "BAD_JSON"

    def test_queue_full_over_http(self, server, client):
        create_http_session(client, name="bp", queue_bound=1)
        served = server.app.get_session("bp")
        served.pause_writer()
        statuses = []

        def submit(u, v):
            status, _ = client.post(
                "/sessions/bp/ingest", {"insertions": [[u, v, 0.5]]}
            )
            statuses.append(status)

        t1 = threading.Thread(target=submit, args=(1, 3))
        t1.start()
        wait_until(
            lambda: served._queue.unfinished_tasks == 1
            and served._queue.qsize() == 0
        )
        t2 = threading.Thread(target=submit, args=(2, 0))
        t2.start()
        wait_until(lambda: served.queue_depth() == 1)

        status, payload = client.post(
            "/sessions/bp/ingest", {"insertions": [[3, 1, 9.0]]}
        )
        assert status == 429 and payload["error"] == "QUEUE_FULL"

        served.resume_writer()
        t1.join(timeout=10)
        t2.join(timeout=10)
        assert statuses == [200, 200]

    def test_shutdown_route_drains_and_stops(self):
        server = ServeServer(ServeApp(), port=0).start()
        client = HttpClient(server.url)
        create_http_session(client)
        status, payload = client.post("/shutdown")
        assert status == 200 and payload["status"] == "draining"
        # serve_until_shutdown returns promptly and drains everything.
        server.serve_until_shutdown(poll_s=0.01)
        assert server.app._closed
        assert server.app.accelerator.sessions == []
        # The bound port is still reported after stop (not the stale 0).
        assert server.port > 0

    def test_metrics_routes_mounted(self, server, client):
        REGISTRY.enable().reset()
        try:
            create_http_session(client)
            client.get("/sessions/s/read")
            client.post("/sessions/s/ingest", {"insertions": [[1, 3, 0.5]]})

            request = urllib.request.Request(server.url + "/metrics")
            with urllib.request.urlopen(request, timeout=60) as response:
                text = response.read().decode("utf-8")
                ctype = response.headers["Content-Type"]
            assert "version=0.0.4" in ctype
            assert "repro_serve_reads_total" in text
            assert "repro_serve_queue_depth" in text
            assert 'repro_serve_requests_total{route="read",status="200"}' in text

            status, snapshot = client.get("/metrics.json")
            assert status == 200 and snapshot["format"] == "repro-metrics"

            # HEAD works on the mounted scrape route too.
            request = urllib.request.Request(
                server.url + "/metrics", method="HEAD"
            )
            with urllib.request.urlopen(request, timeout=60) as response:
                assert response.read() == b""
                assert int(response.headers["Content-Length"]) > 0
        finally:
            REGISTRY.disable().reset()

    def test_serve_metrics_families_recorded(self, server, client):
        REGISTRY.enable().reset()
        try:
            create_http_session(client, name="m", queue_bound=1)
            client.post("/sessions/m/ingest", {"insertions": [[1, 3, 0.5]]})
            client.post("/sessions/m/update", {"u": 0, "v": 3, "w": 0.1})
            client.get("/sessions/m/read")

            assert REGISTRY.value("repro_serve_sessions") == 1
            assert (
                REGISTRY.value("repro_serve_writes_applied_total", kind="batch")
                == 1
            )
            assert (
                REGISTRY.value("repro_serve_writes_applied_total", kind="update")
                == 1
            )
            assert (
                REGISTRY.value("repro_serve_reads_total", kind="latest") == 1
            )

            served = server.app.get_session("m")
            served.pause_writer()
            statuses = []

            def submit(u, v):
                status, _ = client.post(
                    "/sessions/m/ingest", {"insertions": [[u, v, 5.0]]}
                )
                statuses.append(status)

            t1 = threading.Thread(target=submit, args=(2, 0))
            t1.start()
            wait_until(
                lambda: served._queue.unfinished_tasks == 3
                and served._queue.qsize() == 0
            )
            t2 = threading.Thread(target=submit, args=(3, 0))
            t2.start()
            wait_until(lambda: served.queue_depth() == 1)
            status, _ = client.post(
                "/sessions/m/ingest", {"insertions": [[3, 1, 5.0]]}
            )
            assert status == 429
            assert (
                REGISTRY.value("repro_serve_rejected_total", kind="batch") == 1
            )
            served.resume_writer()
            t1.join(timeout=10)
            t2.join(timeout=10)
        finally:
            REGISTRY.disable().reset()


# ---------------------------------------------------------------------------
# Torn-read checker: the serving consistency contract under concurrency
# ---------------------------------------------------------------------------


class TestTornReads:
    """Concurrent readers must only ever observe converged snapshots.

    Ingest/update clients race each other and the readers; afterwards the
    applied-write log is replayed through an oracle host session and every
    ``(seq, digest)`` pair any reader observed must equal the oracle's
    digest at that seq. A torn read (mid-convergence state, partial numpy
    copy, wrong snapshot swap order) cannot produce a digest that matches
    the converged state for its seq.
    """

    N = 48
    INGEST_CLIENTS = 2
    BATCHES = 5
    BATCH_SIZE = 3
    UPDATES = 6
    READS = 40
    HEAVY = 1.0e9

    def _base_edges(self):
        return [
            (int(u), int(v), float(w))
            for u, v, w in generators.ensure_reachable_core(
                generators.erdos_renyi(self.N, 4 * self.N, seed=5), self.N, seed=6
            )
        ]

    def _fresh_edges(self, base, lane, count):
        """Globally fresh edges with sources ``u ≡ lane (mod 3)``."""
        existing = {(u, v) for u, v, _ in base}
        rng = np.random.default_rng(100 + lane)
        out = []
        while len(out) < count:
            u = int(rng.integers(0, self.N // 3)) * 3 + lane
            v = int(rng.integers(0, self.N))
            if u >= self.N or u == v or (u, v) in existing:
                continue
            existing.add((u, v))
            out.append((u, v, self.HEAVY))
        return out

    def test_concurrent_reads_never_torn(self):
        base = self._base_edges()
        app = ServeApp()
        server = ServeServer(app, port=0).start()
        observed = []  # (seq, digest) from every read client
        errors = []
        try:
            client = HttpClient(server.url)
            status, _ = create_http_session(client, name="t", edges=base)
            assert status == 201

            def ingest_worker(lane):
                http = HttpClient(server.url)
                edges = self._fresh_edges(
                    base, lane, self.BATCHES * self.BATCH_SIZE
                )
                try:
                    for i in range(self.BATCHES):
                        batch = edges[
                            i * self.BATCH_SIZE : (i + 1) * self.BATCH_SIZE
                        ]
                        status, _ = http.post(
                            "/sessions/t/ingest",
                            {"insertions": [list(e) for e in batch]},
                        )
                        assert status == 200
                except Exception as exc:
                    errors.append(repr(exc))

            def update_worker():
                http = HttpClient(server.url)
                try:
                    for u, v, w in self._fresh_edges(base, 2, self.UPDATES):
                        status, _ = http.post(
                            "/sessions/t/update", {"u": u, "v": v, "w": w}
                        )
                        assert status == 200
                except Exception as exc:
                    errors.append(repr(exc))

            def read_worker():
                http = HttpClient(server.url)
                try:
                    for _ in range(self.READS):
                        status, reply = http.get("/sessions/t/read")
                        assert status == 200
                        observed.append((reply["seq"], reply["digest"]))
                except Exception as exc:
                    errors.append(repr(exc))

            threads = (
                [
                    threading.Thread(target=ingest_worker, args=(lane,))
                    for lane in range(self.INGEST_CLIENTS)
                ]
                + [threading.Thread(target=update_worker)]
                + [threading.Thread(target=read_worker) for _ in range(2)]
            )
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not errors, errors

            status, log = client.get("/sessions/t/log")
            assert status == 200
            applied = log["log"]
            total_ops = self.INGEST_CLIENTS * self.BATCHES + self.UPDATES
            assert [e["seq"] for e in applied] == list(range(1, total_ops + 1))
        finally:
            server.stop()

        # Oracle replay: the same writes in the same order through a plain
        # host session give the only digests any reader may have seen.
        oracle = Accelerator().load_graph(base)
        oracle.configure("sssp", source=0)
        oracle.run()
        digests = {0: state_digest(oracle.read_results())}
        for entry in applied:
            payload = entry["payload"]
            if entry["kind"] == "batch":
                oracle.push_updates(
                    insertions=[
                        (int(u), int(v), float(w))
                        for u, v, w in payload.get("insertions", [])
                    ],
                    deletions=[
                        (int(u), int(v)) for u, v in payload.get("deletions", [])
                    ],
                )
                oracle.run()
            else:
                oracle.apply_update(
                    int(payload["u"]),
                    int(payload["v"]),
                    float(payload.get("w", 1.0)),
                    op=payload.get("op", "insert"),
                )
            digests[entry["seq"]] = state_digest(oracle.read_results())
        oracle.close()

        assert observed, "read clients observed nothing"
        for seq, digest in observed:
            assert seq in digests, f"read observed unknown seq {seq}"
            assert digest == digests[seq], (
                f"TORN READ at seq {seq}: digest {digest} does not match "
                f"the converged state for that seq"
            )


class TestReadSnapshotDigest:
    def test_digest_cached_per_snapshot(self):
        states = np.array([1.0, 2.0], dtype=np.float64)
        states.setflags(write=False)
        snapshot = ReadSnapshot(seq=0, stamp=0, graph_version=0, states=states)
        assert snapshot.digest == state_digest(states)
        assert snapshot.digest is snapshot.digest  # cached, not recomputed
