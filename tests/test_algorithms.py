"""Unit tests for the DAIC algorithm definitions."""

import math

import pytest

from repro.algorithms import (
    Adsorption,
    BFS,
    ConnectedComponents,
    PageRank,
    SSSP,
    SSWP,
    make_algorithm,
)
from repro.algorithms.base import AlgorithmKind, SourceContext
from repro.graph.csr import CSRGraph


@pytest.fixture
def tiny_graph():
    return CSRGraph(4, [(0, 1, 2.0), (1, 2, 3.0), (2, 3, 4.0)])


class TestSSSP:
    def test_interface(self):
        alg = SSSP(source=0)
        assert alg.kind is AlgorithmKind.SELECTIVE
        assert alg.identity == math.inf

    def test_reduce_is_min(self):
        alg = SSSP()
        assert alg.reduce(5.0, 3.0) == 3.0
        assert alg.reduce(3.0, 5.0) == 3.0

    def test_propagate_adds_weight(self):
        assert SSSP().propagate(5.0, 2.0, None) == 7.0

    def test_initial_events(self, tiny_graph):
        assert SSSP(source=2).initial_events(tiny_graph) == [(2, 0.0)]

    def test_source_out_of_range(self, tiny_graph):
        with pytest.raises(ValueError):
            SSSP(source=10).initial_events(tiny_graph)

    def test_negative_source_rejected(self):
        with pytest.raises(ValueError):
            SSSP(source=-1)

    def test_self_event_only_for_source(self):
        alg = SSSP(source=1)
        assert alg.self_event(1) == 0.0
        assert alg.self_event(0) is None

    def test_more_progressed(self):
        alg = SSSP()
        assert alg.more_progressed(3.0, 5.0)
        assert not alg.more_progressed(5.0, 3.0)
        assert not alg.more_progressed(3.0, 3.0)


class TestSSWP:
    def test_reduce_is_max(self):
        alg = SSWP()
        assert alg.reduce(5.0, 3.0) == 5.0

    def test_propagate_is_bottleneck(self):
        alg = SSWP()
        assert alg.propagate(5.0, 2.0, None) == 2.0
        assert alg.propagate(2.0, 5.0, None) == 2.0

    def test_source_gets_infinite_capacity(self, tiny_graph):
        events = SSWP(source=0).initial_events(tiny_graph)
        assert events == [(0, math.inf)]

    def test_identity_is_zero(self):
        assert SSWP().identity == 0.0

    def test_more_progressed(self):
        alg = SSWP()
        assert alg.more_progressed(5.0, 3.0)
        assert not alg.more_progressed(3.0, 5.0)


class TestBFS:
    def test_propagate_ignores_weight(self):
        assert BFS().propagate(3.0, 99.0, None) == 4.0

    def test_initial_events(self, tiny_graph):
        assert BFS(source=0).initial_events(tiny_graph) == [(0, 0.0)]


class TestConnectedComponents:
    def test_needs_symmetric(self):
        assert ConnectedComponents().needs_symmetric

    def test_propagate_passes_label(self):
        assert ConnectedComponents().propagate(3.0, 7.0, None) == 3.0

    def test_every_vertex_seeded(self, tiny_graph):
        events = ConnectedComponents().initial_events(tiny_graph)
        assert events == [(v, float(v)) for v in range(4)]

    def test_self_event_is_own_label(self):
        alg = ConnectedComponents()
        assert alg.self_event(3) == 3.0
        assert alg.seed_event_for_new_vertex(9) == 9.0


class TestPageRank:
    def test_interface(self):
        alg = PageRank()
        assert alg.kind is AlgorithmKind.ACCUMULATIVE
        assert alg.degree_dependent
        assert alg.identity == 0.0

    def test_reduce_is_sum(self):
        assert PageRank().reduce(1.0, 2.5) == 3.5

    def test_propagate_divides_by_degree(self):
        alg = PageRank(alpha=0.85)
        ctx = SourceContext(out_degree=4, out_weight_sum=10.0)
        assert alg.propagate(2.0, 1.0, ctx) == pytest.approx(0.425)

    def test_propagate_sink_is_zero(self):
        alg = PageRank()
        assert alg.propagate(2.0, 1.0, SourceContext(0, 0.0)) == 0.0

    def test_propagation_factor_consistent(self):
        alg = PageRank()
        ctx = SourceContext(out_degree=3, out_weight_sum=5.0)
        assert alg.propagate(2.0, 1.0, ctx) == pytest.approx(
            2.0 * alg.propagation_factor(ctx)
        )
        assert not alg.weight_scaled_propagation

    def test_teleport_events(self, tiny_graph):
        events = PageRank(alpha=0.85).initial_events(tiny_graph)
        assert all(payload == pytest.approx(0.15) for _, payload in events)
        assert len(events) == 4

    def test_new_vertex_seed(self):
        assert PageRank(alpha=0.8).seed_event_for_new_vertex(5) == pytest.approx(0.2)

    def test_bad_alpha_rejected(self):
        with pytest.raises(ValueError):
            PageRank(alpha=1.5)

    def test_bad_tolerance_rejected(self):
        with pytest.raises(ValueError):
            PageRank(tolerance=0.0)

    def test_should_propagate_threshold(self):
        alg = PageRank(tolerance=1e-3)
        assert alg.should_propagate(0.01)
        assert alg.should_propagate(-0.01)
        assert not alg.should_propagate(1e-4)


class TestAdsorption:
    def test_interface(self):
        alg = Adsorption()
        assert alg.kind is AlgorithmKind.ACCUMULATIVE
        assert alg.degree_dependent
        assert alg.weight_scaled_propagation

    def test_propagate_normalizes_by_weight_sum(self):
        alg = Adsorption(p_continue=0.7)
        ctx = SourceContext(out_degree=2, out_weight_sum=10.0)
        assert alg.propagate(1.0, 4.0, ctx) == pytest.approx(0.28)

    def test_propagation_factor_consistent(self):
        alg = Adsorption()
        ctx = SourceContext(out_degree=2, out_weight_sum=8.0)
        assert alg.propagate(3.0, 2.0, ctx) == pytest.approx(
            3.0 * alg.propagation_factor(ctx) * 2.0
        )

    def test_injection_events(self, tiny_graph):
        alg = Adsorption(injections={1: 2.0}, p_inject=0.25)
        assert alg.initial_events(tiny_graph) == [(1, 0.5)]

    def test_injection_out_of_range(self, tiny_graph):
        with pytest.raises(ValueError):
            Adsorption(injections={99: 1.0}).initial_events(tiny_graph)

    def test_seed_only_for_injected(self):
        alg = Adsorption(injections={3: 2.0}, p_inject=0.25)
        assert alg.seed_event_for_new_vertex(3) == pytest.approx(0.5)
        assert alg.seed_event_for_new_vertex(4) is None

    def test_bad_probabilities_rejected(self):
        with pytest.raises(ValueError):
            Adsorption(p_inject=0.5, p_continue=0.6)


class TestFactory:
    @pytest.mark.parametrize(
        "name, cls",
        [
            ("sssp", SSSP),
            ("sswp", SSWP),
            ("bfs", BFS),
            ("cc", ConnectedComponents),
            ("pagerank", PageRank),
            ("pr", PageRank),
            ("adsorption", Adsorption),
        ],
    )
    def test_make_algorithm(self, name, cls):
        assert isinstance(make_algorithm(name), cls)

    def test_source_forwarded(self):
        assert make_algorithm("sssp", source=3).source == 3

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_algorithm("triangle-counting")


class TestValueComparison:
    def test_selective_exact(self):
        alg = SSSP()
        assert alg.values_close(3.0, 3.0)
        assert not alg.values_close(3.0, 3.0001)
        assert alg.values_close(math.inf, math.inf)

    def test_accumulative_tolerant(self):
        alg = PageRank(tolerance=1e-6)
        assert alg.values_close(1.0, 1.0 + 1e-7)
        assert not alg.values_close(1.0, 1.1)

    def test_states_close(self):
        alg = SSSP()
        assert alg.states_close([1.0, 2.0], [1.0, 2.0])
        assert not alg.states_close([1.0, 2.0], [1.0, 3.0])
