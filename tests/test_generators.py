"""Unit tests for the synthetic graph generators."""

import pytest

from repro.graph import generators


def _no_self_loops(edges):
    return all(u != v for u, v, _ in edges)


def _no_duplicates(edges):
    pairs = [(u, v) for u, v, _ in edges]
    return len(pairs) == len(set(pairs))


class TestRmat:
    def test_deterministic(self):
        assert generators.rmat(64, 256, seed=5) == generators.rmat(64, 256, seed=5)

    def test_seed_changes_output(self):
        assert generators.rmat(64, 256, seed=1) != generators.rmat(64, 256, seed=2)

    def test_edge_count(self):
        edges = generators.rmat(128, 512, seed=0)
        assert len(edges) == 512

    def test_no_self_loops_or_duplicates(self):
        edges = generators.rmat(128, 512, seed=3)
        assert _no_self_loops(edges)
        assert _no_duplicates(edges)

    def test_skewed_degrees(self):
        edges = generators.rmat(256, 2048, seed=1)
        degree = {}
        for u, _, _ in edges:
            degree[u] = degree.get(u, 0) + 1
        assert max(degree.values()) > 4 * (len(edges) / 256)

    def test_weights_in_range(self):
        edges = generators.rmat(64, 128, seed=0)
        assert all(1 <= w < 64 for _, _, w in edges)

    def test_unweighted(self):
        edges = generators.rmat(64, 128, seed=0, weighted=False)
        assert all(w == 1.0 for _, _, w in edges)

    def test_too_few_vertices_rejected(self):
        with pytest.raises(ValueError):
            generators.rmat(1, 4)

    def test_bad_probabilities_rejected(self):
        with pytest.raises(ValueError):
            generators.rmat(8, 16, a=0.6, b=0.3, c=0.3)


class TestErdosRenyi:
    def test_exact_edge_count(self):
        assert len(generators.erdos_renyi(50, 200, seed=0)) == 200

    def test_deterministic(self):
        assert generators.erdos_renyi(30, 90, seed=7) == generators.erdos_renyi(
            30, 90, seed=7
        )

    def test_no_self_loops_or_duplicates(self):
        edges = generators.erdos_renyi(40, 300, seed=2)
        assert _no_self_loops(edges)
        assert _no_duplicates(edges)

    def test_too_many_edges_rejected(self):
        with pytest.raises(ValueError):
            generators.erdos_renyi(3, 100)


class TestWattsStrogatz:
    def test_small_world_shape(self):
        edges = generators.watts_strogatz(60, k=4, seed=1)
        assert _no_self_loops(edges)
        assert _no_duplicates(edges)
        # Symmetric construction.
        pairs = {(u, v) for u, v, _ in edges}
        assert all((v, u) in pairs for u, v in pairs)

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            generators.watts_strogatz(20, k=3)


class TestLongPathWeb:
    def test_edge_count_approx(self):
        edges = generators.long_path_web(512, 2048, seed=0)
        assert len(edges) == 2048

    def test_deterministic(self):
        assert generators.long_path_web(256, 1024, seed=4) == generators.long_path_web(
            256, 1024, seed=4
        )

    def test_longer_paths_than_rmat(self):
        """The web generator should produce higher-diameter graphs."""
        from repro.graph.csr import CSRGraph
        from repro import reference
        import numpy as np

        n, m = 1024, 4096
        web = generators.ensure_reachable_core(
            generators.long_path_web(n, m, seed=1), n, seed=2
        )
        social = generators.ensure_reachable_core(
            generators.rmat(n, m, seed=1), n, seed=2
        )
        web_depth = np.max(
            reference.bfs(CSRGraph(n, web), 0)[
                np.isfinite(reference.bfs(CSRGraph(n, web), 0))
            ]
        )
        social_depth = np.max(
            reference.bfs(CSRGraph(n, social), 0)[
                np.isfinite(reference.bfs(CSRGraph(n, social), 0))
            ]
        )
        assert web_depth > social_depth


class TestGridRoad:
    def test_grid_edges_bidirectional(self):
        edges = generators.grid_road(4, 5, seed=0, diagonal_p=0.0)
        pairs = {(u, v) for u, v, _ in edges}
        assert all((v, u) in pairs for u, v in pairs)

    def test_grid_size(self):
        # 4x5 grid: horizontal 4*4=16, vertical 3*5=15, both directions.
        edges = generators.grid_road(4, 5, seed=0, diagonal_p=0.0)
        assert len(edges) == 2 * (16 + 15)


class TestHelpers:
    def test_ensure_reachable_core(self):
        from repro.graph.csr import CSRGraph
        from repro import reference
        import numpy as np

        edges = generators.rmat(128, 256, seed=9)
        fixed = generators.ensure_reachable_core(edges, 128, root=0, seed=1)
        dist = reference.bfs(CSRGraph(128, fixed), 0)
        assert np.all(np.isfinite(dist))

    def test_largest_weakly_connected(self):
        edges = [(0, 1, 1.0), (1, 2, 1.0), (5, 6, 1.0)]
        sub, n = generators.largest_weakly_connected(edges, 8)
        assert n == 3
        assert len(sub) == 2
