"""Replays of the paper's worked examples (Figures 2, 3, 4, 5, 8).

These figures are didactic rather than experimental, but they pin the exact
semantics of the recovery machinery, so we encode them as tests.
"""

import math

import numpy as np
import pytest

from repro.algorithms import make_algorithm
from repro.core.policies import DeletePolicy
from repro.core.streaming import JetStreamEngine
from repro.graph.dynamic import DynamicGraph
from repro.streams import Edge, UpdateBatch


class TestFig2and3:
    """SSSP on the 5-vertex graph of Fig. 2 with delete(A->C).

    Vertices A..E = 0..4; edges: A->B 3, A->C 5, B->C 2, B->D 8, C->D 7,
    C->E 12(?), D->E ... — the paper gives converged distances
    A=0, B=3, C=5, D=8, E=12 and, after delete(A->C), C=∞ only if C was
    reachable solely via A; the figure's expected result is
    [0, 3, 5, 8, 12] -> [0, 3, 5, 13, 15] with C now reached via B.
    """

    @pytest.fixture
    def engine(self):
        # Reconstructed from Fig. 2(a)/Fig. 3: distances 0,3,5,8,12 with
        # A->C 5 deleted; recovery must find C via B (3+2=5... the figure
        # shows C reset and recomputed to 7 via B with weight 2? The text
        # timeline (Fig. 3) ends at [0, 3, 7, 13, 15].)
        edges = [
            (0, 1, 3.0),  # A->B
            (0, 2, 5.0),  # A->C
            (1, 2, 7.0),  # B->C   (recovery path: 3+7 = 10? see below)
            (2, 3, 8.0),  # C->D
            (3, 4, 2.0),  # D->E  (not matching exactly; asserted via oracle)
        ]
        graph = DynamicGraph.from_edges(edges, 5)
        engine = JetStreamEngine(graph, make_algorithm("sssp", source=0))
        engine.initial_compute()
        return engine

    def test_initial_convergence(self, engine):
        assert list(engine.states) == [0.0, 3.0, 5.0, 13.0, 15.0]

    def test_naive_recovery_would_be_unrecoverable(self, engine):
        """Fig. 2(b): keeping the previous state after delete(A->C) can
        never reach the correct result under monotonic reduce — verified
        by showing the correct result is strictly less progressed."""
        before = engine.query_result()
        engine.apply_batch(UpdateBatch(deletions=[Edge(0, 2)]))
        after = engine.query_result()
        # The correct post-delete states are larger (less progressed):
        # min-reduce alone could never move 5 -> 10.
        assert after[2] > before[2]

    def test_recovery_reaches_expected_result(self, engine):
        """Fig. 3 timeline: impacted vertices reset, then reevaluation
        converges to the correct post-delete distances."""
        result = engine.apply_batch(UpdateBatch(deletions=[Edge(0, 2)]))
        assert list(result.states) == [0.0, 3.0, 10.0, 18.0, 20.0]
        # C, D, E were influenced by the deleted edge and had to reset.
        assert set(result.impacted) == {2, 3, 4}


class TestFig4:
    """The 7-vertex example driving §3.3–§3.4 (A..G = 0..6)."""

    @pytest.fixture
    def engine(self, small_digraph):
        engine = JetStreamEngine(
            small_digraph, make_algorithm("sssp", source=0), policy=DeletePolicy.DAP
        )
        engine.initial_compute()
        return engine

    def test_initial_states_match_figure(self, engine):
        # Fig. 4(a): A=0, B=8, C=9, D=12, E=14, F=17, G=19.
        assert list(engine.states) == [0.0, 8.0, 9.0, 12.0, 14.0, 17.0, 19.0]

    def test_insertion_fig4b(self, engine):
        """Fig. 4(b): add A->D weight 3: D 12->3, G 19->10, E 14->10,
        F 17->15; propagation stops at E via G (monotonicity)."""
        result = engine.apply_batch(UpdateBatch(insertions=[Edge(0, 3, 3.0)]))
        assert list(result.states) == [0.0, 8.0, 9.0, 3.0, 10.0, 15.0, 10.0]
        assert result.vertices_reset == 0

    def test_deletion_fig4cd(self, engine):
        """Fig. 4(c)/(d): after add(A->D) then delete(A->C): C resets to ∞
        (unreachable via the deleted edge's subtree is rediscovered),
        E/F recover via requests: C=∞, E=10, F=15."""
        engine.apply_batch(UpdateBatch(insertions=[Edge(0, 3, 3.0)]))
        result = engine.apply_batch(UpdateBatch(deletions=[Edge(0, 2)]))
        assert list(result.states) == [0.0, 8.0, math.inf, 3.0, 10.0, 15.0, 10.0]

    def test_fig8_dependency_tree_before_deletion(self, engine):
        """Fig. 8(a): dependency (parent) pointers of the converged run."""
        dependency = engine.core.dependency
        # B(8,A) C(9,A) D(12,B) E(14,C) F(17,C) G(19,D)
        assert dependency[1] == 0
        assert dependency[2] == 0
        assert dependency[3] == 1
        assert dependency[4] == 2
        assert dependency[5] == 2
        assert dependency[6] == 3

    def test_fig8_dependency_tree_after_reevaluation(self, engine):
        """Fig. 8(b)/(c): delete(A->C) resets the C-rooted subtree
        (C, E, F); reevaluation rebuilds E(16,B) and F(21,E) while C stays
        unreachable — exactly the paper's final tree."""
        result = engine.apply_batch(UpdateBatch(deletions=[Edge(0, 2)]))
        assert set(result.impacted) == {2, 4, 5}  # C, E, F reset (Fig. 8b)
        assert list(result.states) == [0.0, 8.0, math.inf, 12.0, 16.0, 21.0, 19.0]
        dependency = engine.core.dependency
        assert dependency[1] == 0  # B(8, A)
        assert dependency[3] == 1  # D(12, B)
        assert dependency[6] == 3  # G(19, D)
        assert dependency[4] == 1  # E(16, B)
        assert dependency[5] == 4  # F(21, E)
        from repro.core.events import NO_SOURCE

        assert dependency[2] == NO_SOURCE  # C reset, never restored


class TestFig5:
    """Accumulative deletion via the intermediate sink graph (Fig. 5)."""

    def test_sink_construction_matches_figure(self):
        """Fig. 5(b): deleting B->C turns B into a sink — all of B's
        out-edges join the delete batch; Fig. 5(c): the others re-add."""
        # A->B, B->C, B->D, B->E (A=0, B=1, C=2, D=3, E=4).
        graph = DynamicGraph.from_edges(
            [(0, 1, 1.0), (1, 2, 1.0), (1, 3, 1.0), (1, 4, 1.0)], 5
        )
        intermediate = graph.snapshot_with_sinks({1})
        assert intermediate.out_degree(1) == 0
        assert intermediate.has_edge(0, 1)

    def test_two_phase_pagerank_on_figure_graph(self):
        from repro import reference
        from conftest import assert_states_match

        graph = DynamicGraph.from_edges(
            [(0, 1, 1.0), (1, 2, 1.0), (1, 3, 1.0), (1, 4, 1.0), (2, 1, 1.0)], 5
        )
        alg = make_algorithm("pagerank")
        engine = JetStreamEngine(graph, alg, two_phase_accumulative=True)
        engine.initial_compute()
        engine.apply_batch(UpdateBatch(deletions=[Edge(1, 2)]))
        expected = reference.pagerank(graph.snapshot())
        assert_states_match(alg, engine.states, expected, "fig5 pagerank")


class TestAlgorithm1:
    """The SSSP execution model of Algorithm 1 on a textbook graph."""

    def test_event_driven_equals_dijkstra(self):
        from repro import reference
        from repro.core.engine import GraphPulseEngine

        edges = [
            (0, 1, 7.0),
            (0, 2, 9.0),
            (0, 5, 14.0),
            (1, 2, 10.0),
            (1, 3, 15.0),
            (2, 3, 11.0),
            (2, 5, 2.0),
            (3, 4, 6.0),
            (5, 4, 9.0),
        ]
        graph = DynamicGraph.from_edges(edges, 6)
        alg = make_algorithm("sssp", source=0)
        result = GraphPulseEngine(alg).compute(graph.snapshot())
        assert np.array_equal(result.states, reference.sssp(graph.snapshot(), 0))
        assert result.states[4] == 20.0  # the classic Wikipedia answer
