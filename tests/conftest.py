"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np
import pytest

from repro.graph import generators
from repro.graph.dynamic import DynamicGraph

Edge = Tuple[int, int, float]


def random_digraph(n: int = 40, m: int = 160, seed: int = 0) -> DynamicGraph:
    """Seeded random directed graph with integer weights."""
    return DynamicGraph.from_edges(generators.erdos_renyi(n, m, seed=seed), n)


def random_symmetric_graph(n: int = 40, m: int = 160, seed: int = 0) -> DynamicGraph:
    """Seeded random symmetric graph (for CC)."""
    edges = generators.erdos_renyi(n, m, seed=seed)
    dedup: Dict[Tuple[int, int], float] = {}
    for u, v, w in edges:
        if (v, u) not in dedup:
            dedup[(u, v)] = w
    graph = DynamicGraph(n, symmetric=True)
    for (u, v), w in sorted(dedup.items()):
        graph.add_edge(u, v, w, _count_version=False)
    return graph


def make_graph_for(algorithm, n: int = 40, m: int = 160, seed: int = 0) -> DynamicGraph:
    """A graph matching the algorithm's symmetry requirement."""
    if algorithm.needs_symmetric:
        return random_symmetric_graph(n, m, seed)
    return random_digraph(n, m, seed)


def assert_states_match(algorithm, actual, expected, context: str = "") -> None:
    """Element-wise comparison with the algorithm's tolerance."""
    actual = np.asarray(actual, dtype=np.float64)
    expected = np.asarray(expected, dtype=np.float64)
    assert actual.shape == expected.shape, context
    bad = [
        (i, float(actual[i]), float(expected[i]))
        for i in range(len(expected))
        if not algorithm.values_close(actual[i], expected[i])
    ]
    assert not bad, f"{context}: first mismatches {bad[:5]}"


@pytest.fixture
def small_digraph() -> DynamicGraph:
    """The paper's Fig. 4 example graph (A..G = 0..6)."""
    edges = [
        (0, 1, 8.0),  # A->B
        (0, 2, 9.0),  # A->C
        (1, 3, 4.0),  # B->D
        (1, 4, 8.0),  # B->E
        (2, 4, 5.0),  # C->E
        (2, 5, 8.0),  # C->F
        (3, 4, 7.0),  # D->E
        (3, 6, 7.0),  # D->G
        (4, 5, 5.0),  # E->F
        (6, 4, 3.0),  # G->E
    ]
    return DynamicGraph.from_edges(edges, 7)
