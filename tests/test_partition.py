"""Unit and property tests for the edge-cut partitioner (PuLP substitute)."""

import numpy as np
import pytest

from repro.graph import generators
from repro.graph.csr import CSRGraph
from repro.graph.partition import (
    extend_assignment,
    extend_partition,
    partition_graph,
    repartition_report,
    slices_required,
)


@pytest.fixture
def medium_graph() -> CSRGraph:
    return CSRGraph(200, generators.erdos_renyi(200, 1200, seed=3))


class TestPartition:
    def test_single_slice(self, medium_graph):
        result = partition_graph(medium_graph, 1)
        assert result.num_slices == 1
        assert result.cut_edges == 0
        assert result.slice_sizes == [200]

    def test_every_vertex_assigned(self, medium_graph):
        result = partition_graph(medium_graph, 4)
        assert np.all(result.assignment >= 0)
        assert sum(result.slice_sizes) == 200

    def test_balance(self, medium_graph):
        result = partition_graph(medium_graph, 4)
        assert max(result.slice_sizes) <= int(np.ceil(200 / 4) * 1.05) + 1

    def test_cut_fraction_below_random(self, medium_graph):
        """BFS-grown slices should beat a random assignment's cut."""
        result = partition_graph(medium_graph, 4)
        rng = np.random.default_rng(0)
        random_assignment = rng.integers(0, 4, size=200)
        random_cut = sum(
            1
            for u, v, _ in medium_graph.edges()
            if random_assignment[u] != random_assignment[v]
        )
        assert result.cut_edges < random_cut

    def test_cut_fraction_property(self, medium_graph):
        result = partition_graph(medium_graph, 2)
        assert 0.0 <= result.cut_fraction <= 1.0

    def test_members_match_assignment(self, medium_graph):
        result = partition_graph(medium_graph, 3)
        for sid, members in enumerate(result.members):
            assert np.all(result.assignment[members] == sid)

    def test_zero_slices_rejected(self, medium_graph):
        with pytest.raises(ValueError):
            partition_graph(medium_graph, 0)

    def test_empty_graph(self):
        result = partition_graph(CSRGraph(0, []), 1)
        assert result.num_slices == 1
        assert result.total_edges == 0

    def test_isolated_vertices_assigned(self):
        graph = CSRGraph(10, [(0, 1, 1.0)])
        result = partition_graph(graph, 2)
        assert sum(result.slice_sizes) == 10


class TestPartitionProperties:
    """Property-style sweeps over sizes, slice counts, and seeds."""

    CASES = [
        (1, 1, 0),
        (5, 2, 1),
        (40, 3, 2),
        (120, 8, 3),
        (200, 5, 4),
    ]

    @pytest.mark.parametrize("n,k,seed", CASES)
    def test_every_vertex_assigned_exactly_once(self, n, k, seed):
        graph = CSRGraph(n, generators.erdos_renyi(n, min(4 * n, n * (n - 1)), seed=seed))
        result = partition_graph(graph, k)
        assert result.assignment.shape == (n,)
        assert np.all((result.assignment >= 0) & (result.assignment < k))
        # Membership lists partition [0, n): disjoint and exhaustive.
        merged = np.concatenate(result.members) if result.members else np.empty(0)
        assert np.array_equal(np.sort(merged), np.arange(n))
        assert sum(result.slice_sizes) == n

    @pytest.mark.parametrize("n,k,seed", CASES)
    def test_balance_slack_respected(self, n, k, seed):
        graph = CSRGraph(n, generators.erdos_renyi(n, min(4 * n, n * (n - 1)), seed=seed))
        slack = 0.05
        result = partition_graph(graph, k, balance_slack=slack)
        capacity = int(np.ceil(n / k) * (1 + slack))
        # Every slice but the last is capacity-bounded by construction (the
        # last absorbs whatever the earlier slices left, plus stragglers).
        for size in result.slice_sizes[:-1]:
            assert size <= capacity + 1

    @pytest.mark.parametrize("n,k,seed", CASES)
    def test_cut_edges_matches_recount(self, n, k, seed):
        graph = CSRGraph(n, generators.erdos_renyi(n, min(4 * n, n * (n - 1)), seed=seed))
        result = partition_graph(graph, k)
        recount = sum(
            1
            for u, v, _ in graph.edges()
            if result.assignment[u] != result.assignment[v]
        )
        assert result.cut_edges == recount
        assert result.total_edges == graph.num_edges

    @pytest.mark.parametrize("n,k,seed", CASES)
    def test_deterministic_across_runs(self, n, k, seed):
        graph = CSRGraph(n, generators.erdos_renyi(n, min(4 * n, n * (n - 1)), seed=seed))
        first = partition_graph(graph, k)
        second = partition_graph(graph, k)
        assert np.array_equal(first.assignment, second.assignment)
        assert first.cut_edges == second.cut_edges
        assert first.slice_sizes == second.slice_sizes

    def test_empty_graph_any_slice_count(self):
        for k in (1, 2, 8):
            result = partition_graph(CSRGraph(0, []), k)
            assert result.assignment.shape == (0,)
            assert sum(result.slice_sizes) == 0
            assert result.cut_edges == 0
            assert result.cut_fraction == 0.0

    def test_singleton_slices(self):
        # k == n: every vertex can sit alone; assignment is still total.
        graph = CSRGraph(6, [(0, 1, 1.0), (2, 3, 1.0), (4, 5, 1.0)])
        result = partition_graph(graph, 6)
        assert sum(result.slice_sizes) == 6
        assert np.all((result.assignment >= 0) & (result.assignment < 6))

    def test_more_slices_than_vertices(self):
        graph = CSRGraph(3, [(0, 1, 1.0)])
        result = partition_graph(graph, 8)
        assert result.assignment.shape == (3,)
        assert np.all((result.assignment >= 0) & (result.assignment < 8))
        assert sum(result.slice_sizes) == 3


class TestExtendAssignment:
    def test_prefix_preserved(self):
        base = np.array([0, 1, 1, 2], dtype=np.int64)
        extended = extend_assignment(base, 8, 3)
        assert np.array_equal(extended[:4], base)
        assert extended.shape == (8,)

    def test_lightest_slice_lowest_id_ties(self):
        # Sizes: slice0=2, slice1=1, slice2=1 -> first new vertex joins
        # slice 1 (lightest, lowest id on the 1-vs-2 tie), then slice 2.
        base = np.array([0, 0, 1, 2], dtype=np.int64)
        extended = extend_assignment(base, 6, 3)
        assert extended[4] == 1
        assert extended[5] == 2

    def test_no_growth_is_identity(self):
        base = np.array([0, 1], dtype=np.int64)
        assert extend_assignment(base, 2, 2) is base or np.array_equal(
            extend_assignment(base, 2, 2), base
        )

    def test_deterministic(self):
        base = np.array([2, 0, 1, 1, 0], dtype=np.int64)
        a = extend_assignment(base, 20, 3)
        b = extend_assignment(base, 20, 3)
        assert np.array_equal(a, b)

    def test_extension_stays_balanced(self):
        base = np.zeros(1, dtype=np.int64)
        extended = extend_assignment(base, 31, 3)
        sizes = np.bincount(extended, minlength=3)
        assert sizes.max() - sizes.min() <= 1

    def test_extend_partition_keeps_structure(self):
        graph = CSRGraph(20, generators.erdos_renyi(20, 60, seed=7))
        result = partition_graph(graph, 4)
        grown = extend_partition(result, 30)
        assert grown.num_slices == result.num_slices
        assert np.array_equal(grown.assignment[:20], result.assignment)
        assert grown.cut_edges == result.cut_edges
        assert sum(grown.slice_sizes) == 30
        merged = np.sort(np.concatenate(grown.members))
        assert np.array_equal(merged, np.arange(30))

    def test_extend_partition_no_growth_returns_same(self):
        graph = CSRGraph(10, generators.erdos_renyi(10, 30, seed=9))
        result = partition_graph(graph, 2)
        assert extend_partition(result, 10) is result

    def test_incremental_equals_one_shot(self):
        # Extending 10 -> 15 -> 25 equals extending 10 -> 25 directly: the
        # rule is a pure fold over the size vector.
        base = np.array([0, 0, 0, 1, 1, 2, 2, 2, 2, 1], dtype=np.int64)
        staged = extend_assignment(extend_assignment(base, 15, 3), 25, 3)
        direct = extend_assignment(base, 25, 3)
        assert np.array_equal(staged, direct)


class TestHelpers:
    def test_slices_required(self):
        assert slices_required(100, 50) == 2
        assert slices_required(101, 50) == 3
        assert slices_required(10, 50) == 1

    def test_slices_required_invalid(self):
        with pytest.raises(ValueError):
            slices_required(10, 0)

    def test_repartition_report(self, medium_graph):
        a = partition_graph(medium_graph, 4).assignment
        rng = np.random.default_rng(1)
        drifted = a.copy()
        idx = rng.choice(200, size=40, replace=False)
        drifted[idx] = rng.integers(0, 4, size=40)
        report = repartition_report(medium_graph, [a, drifted])
        assert report["last_cut_fraction"] >= report["first_cut_fraction"]
