"""Unit tests for the edge-cut partitioner (PuLP substitute)."""

import numpy as np
import pytest

from repro.graph import generators
from repro.graph.csr import CSRGraph
from repro.graph.partition import partition_graph, repartition_report, slices_required


@pytest.fixture
def medium_graph() -> CSRGraph:
    return CSRGraph(200, generators.erdos_renyi(200, 1200, seed=3))


class TestPartition:
    def test_single_slice(self, medium_graph):
        result = partition_graph(medium_graph, 1)
        assert result.num_slices == 1
        assert result.cut_edges == 0
        assert result.slice_sizes == [200]

    def test_every_vertex_assigned(self, medium_graph):
        result = partition_graph(medium_graph, 4)
        assert np.all(result.assignment >= 0)
        assert sum(result.slice_sizes) == 200

    def test_balance(self, medium_graph):
        result = partition_graph(medium_graph, 4)
        assert max(result.slice_sizes) <= int(np.ceil(200 / 4) * 1.05) + 1

    def test_cut_fraction_below_random(self, medium_graph):
        """BFS-grown slices should beat a random assignment's cut."""
        result = partition_graph(medium_graph, 4)
        rng = np.random.default_rng(0)
        random_assignment = rng.integers(0, 4, size=200)
        random_cut = sum(
            1
            for u, v, _ in medium_graph.edges()
            if random_assignment[u] != random_assignment[v]
        )
        assert result.cut_edges < random_cut

    def test_cut_fraction_property(self, medium_graph):
        result = partition_graph(medium_graph, 2)
        assert 0.0 <= result.cut_fraction <= 1.0

    def test_members_match_assignment(self, medium_graph):
        result = partition_graph(medium_graph, 3)
        for sid, members in enumerate(result.members):
            assert np.all(result.assignment[members] == sid)

    def test_zero_slices_rejected(self, medium_graph):
        with pytest.raises(ValueError):
            partition_graph(medium_graph, 0)

    def test_empty_graph(self):
        result = partition_graph(CSRGraph(0, []), 1)
        assert result.num_slices == 1
        assert result.total_edges == 0

    def test_isolated_vertices_assigned(self):
        graph = CSRGraph(10, [(0, 1, 1.0)])
        result = partition_graph(graph, 2)
        assert sum(result.slice_sizes) == 10


class TestHelpers:
    def test_slices_required(self):
        assert slices_required(100, 50) == 2
        assert slices_required(101, 50) == 3
        assert slices_required(10, 50) == 1

    def test_slices_required_invalid(self):
        with pytest.raises(ValueError):
            slices_required(10, 0)

    def test_repartition_report(self, medium_graph):
        a = partition_graph(medium_graph, 4).assignment
        rng = np.random.default_rng(1)
        drifted = a.copy()
        idx = rng.choice(200, size=40, replace=False)
        drifted[idx] = rng.integers(0, 4, size=40)
        report = repartition_report(medium_graph, [a, drifted])
        assert report["last_cut_fraction"] >= report["first_cut_fraction"]
