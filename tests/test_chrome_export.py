"""Tests for the Chrome/Perfetto trace-event export (repro.obs.chrome).

A converted trace must be valid trace-event JSON (loadable by
``chrome://tracing`` / ui.perfetto.dev): metadata first, then complete
events with non-negative microsecond timestamps sorted monotonically,
one thread track per engine on sharded traces, and counter tracks for
queue occupancy and NoC flits.
"""

from __future__ import annotations

import json

from repro.algorithms import make_algorithm
from repro.core.streaming import JetStreamEngine
from repro.obs import JsonlSink, Tracer, chrome_trace, read_trace, write_chrome_trace
from repro.streams import StreamGenerator

from conftest import make_graph_for


def traced_trace_file(tmp_path, engine_mode: str, **kwargs):
    path = tmp_path / "run.jsonl"
    tracer = Tracer([JsonlSink(str(path))])
    algorithm = make_algorithm("sssp", source=0)
    graph = make_graph_for(algorithm, n=40, m=160, seed=5)
    engine = JetStreamEngine(
        graph, algorithm, engine=engine_mode, tracer=tracer, **kwargs
    )
    stream = StreamGenerator(engine.graph, seed=6)
    engine.initial_compute()
    for _ in range(2):
        engine.apply_batch(stream.next_batch(10))
    tracer.close()
    return read_trace(path)


def split_events(payload):
    meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
    rest = [e for e in payload["traceEvents"] if e["ph"] != "M"]
    return meta, rest


class TestChromeTrace:
    def test_payload_is_valid_trace_event_json(self, tmp_path):
        trace = traced_trace_file(tmp_path, "vectorized")
        payload = chrome_trace(trace)
        # Must survive a JSON round trip (what the viewers consume).
        payload = json.loads(json.dumps(payload))
        assert payload["displayTimeUnit"] == "ms"
        meta, events = split_events(payload)
        assert meta and events
        for event in events:
            assert event["ph"] in ("X", "C", "i")
            assert event["ts"] >= 0.0
            assert event["pid"] == 1
            if event["ph"] == "X":
                assert event["dur"] >= 0.0
        phases = {e["ph"] for e in events}
        assert "X" in phases and "C" in phases

    def test_timestamps_sorted_monotonically(self, tmp_path):
        trace = traced_trace_file(tmp_path, "vectorized")
        _, events = split_events(chrome_trace(trace))
        stamps = [e["ts"] for e in events]
        assert stamps == sorted(stamps)
        assert stamps[0] == 0.0  # normalized to the earliest span start

    def test_metadata_precedes_events(self, tmp_path):
        trace = traced_trace_file(tmp_path, "vectorized")
        payload = chrome_trace(trace)
        kinds = [e["ph"] for e in payload["traceEvents"]]
        last_meta = max(i for i, ph in enumerate(kinds) if ph == "M")
        assert all(ph == "M" for ph in kinds[: last_meta + 1])
        names = {
            e["args"]["name"]
            for e in payload["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "orchestrator" in names

    def test_sharded_trace_gets_one_track_per_engine(self, tmp_path):
        num_engines = 4
        trace = traced_trace_file(tmp_path, "sharded", num_engines=num_engines)
        payload = chrome_trace(trace)
        meta, events = split_events(payload)
        thread_names = {
            e["tid"]: e["args"]["name"]
            for e in meta
            if e["name"] == "thread_name"
        }
        engine_tids = {
            e["tid"] for e in events if e["ph"] == "X" and e["cat"] == "engine"
        }
        assert engine_tids == set(range(1, num_engines + 1))
        for engine_id in range(num_engines):
            assert thread_names[engine_id + 1] == f"engine {engine_id}"
        # Orchestration spans stay on tid 0.
        orch = [e for e in events if e["ph"] == "X" and e["cat"] != "engine"]
        assert orch and all(e["tid"] == 0 for e in orch)

    def test_round_spans_carry_work_args_and_names(self, tmp_path):
        trace = traced_trace_file(tmp_path, "vectorized")
        _, events = split_events(chrome_trace(trace))
        rounds = [e for e in events if e["ph"] == "X" and e["cat"] == "round"]
        assert rounds
        assert all(e["name"].startswith("round ") for e in rounds)
        assert len({e["name"] for e in rounds}) == len(rounds)
        assert all("events_processed" in e["args"] for e in rounds)

    def test_counter_tracks_for_occupancy_and_flits(self, tmp_path):
        trace = traced_trace_file(tmp_path, "sharded", num_engines=4)
        _, events = split_events(chrome_trace(trace))
        counters = {e["name"] for e in events if e["ph"] == "C"}
        assert "queue occupancy" in counters
        assert "noc flits" in counters

    def test_transfer_events_become_instants(self, tmp_path):
        from repro.host import Accelerator

        path = tmp_path / "host.jsonl"
        tracer = Tracer([JsonlSink(str(path))])
        accel = Accelerator(tracer=tracer)
        session = accel.load_graph(
            [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)], num_vertices=4
        )
        session.configure("sssp", source=0)
        session.run()
        session.read_results()
        tracer.close()
        _, events = split_events(chrome_trace(read_trace(path)))
        instants = [e for e in events if e["ph"] == "i"]
        assert instants
        assert all(e["cat"] == "event" and e["s"] == "t" for e in instants)
        assert any(e["name"] == "transfer" for e in instants)

    def test_write_chrome_trace_file(self, tmp_path):
        trace = traced_trace_file(tmp_path, "vectorized")
        out = tmp_path / "trace.chrome.json"
        count = write_chrome_trace(trace, out)
        payload = json.loads(out.read_text())
        assert len(payload["traceEvents"]) == count
        assert count > 0

    def test_empty_trace_exports_metadata_only(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        tracer = Tracer([JsonlSink(str(path))])
        tracer.close()
        payload = chrome_trace(read_trace(path))
        meta, events = split_events(payload)
        assert events == []
        assert any(e["name"] == "process_name" for e in meta)


class TestChromeCli:
    def test_trace_export_command(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "run.jsonl"
        tracer = Tracer([JsonlSink(str(trace))])
        algorithm = make_algorithm("sssp", source=0)
        graph = make_graph_for(algorithm, n=30, m=90, seed=3)
        JetStreamEngine(graph, algorithm, tracer=tracer).initial_compute()
        tracer.close()

        out = tmp_path / "run.chrome.json"
        assert main(["trace", "export", str(trace), "-o", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["traceEvents"]
        captured = capsys.readouterr().out
        assert str(out) in captured

    def test_trace_export_default_output_path(self, tmp_path):
        from repro.cli import main

        trace = tmp_path / "run.jsonl"
        tracer = Tracer([JsonlSink(str(trace))])
        algorithm = make_algorithm("sssp", source=0)
        graph = make_graph_for(algorithm, n=30, m=90, seed=3)
        JetStreamEngine(graph, algorithm, tracer=tracer).initial_compute()
        tracer.close()

        assert main(["trace", "export", str(trace)]) == 0
        assert (tmp_path / "run.jsonl.chrome.json").exists()
