"""Additional property-based coverage: SSWP, BFS, adsorption, linear
solver streaming; VAP/DAP delete-coalescing invariants; partial drains."""

import math

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import reference
from repro.algorithms import make_algorithm
from repro.algorithms.linear import LinearSystemSolver, reference_solve
from repro.core.config import AcceleratorConfig
from repro.core.events import Event
from repro.core.metrics import RoundWork
from repro.core.policies import DeletePolicy
from repro.core.queue import CoalescingQueue
from repro.core.streaming import JetStreamEngine
from repro.graph.dynamic import DynamicGraph
from repro.streams import Edge, UpdateBatch

from test_properties import graph_and_batch, build_graph

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestMoreStreamingEqualsStatic:
    @SETTINGS
    @given(data=graph_and_batch(), policy=st.sampled_from(list(DeletePolicy)))
    def test_sswp(self, data, policy):
        n, edges, batch = data
        graph = build_graph(n, edges, symmetric=False)
        engine = JetStreamEngine(graph, make_algorithm("sswp", source=0), policy=policy)
        engine.initial_compute()
        result = engine.apply_batch(batch)
        assert np.array_equal(result.states, reference.sswp(graph.snapshot(), 0))

    @SETTINGS
    @given(data=graph_and_batch(), policy=st.sampled_from(list(DeletePolicy)))
    def test_bfs(self, data, policy):
        n, edges, batch = data
        graph = build_graph(n, edges, symmetric=False)
        engine = JetStreamEngine(graph, make_algorithm("bfs", source=0), policy=policy)
        engine.initial_compute()
        result = engine.apply_batch(batch)
        assert np.array_equal(result.states, reference.bfs(graph.snapshot(), 0))

    @SETTINGS
    @given(data=graph_and_batch())
    def test_adsorption(self, data):
        n, edges, batch = data
        graph = build_graph(n, edges, symmetric=False)
        algorithm = make_algorithm("adsorption")
        engine = JetStreamEngine(graph, algorithm)
        engine.initial_compute()
        result = engine.apply_batch(batch)
        expected = reference.adsorption(graph.snapshot(), algorithm.injections)
        assert algorithm.states_close(result.states, expected)

    @SETTINGS
    @given(data=graph_and_batch(max_n=10))
    def test_linear_solver(self, data):
        n, edges, batch = data
        # Rescale weights so the operator stays contractive through the
        # batch (budget covers the inserted edges too).
        degree = {}
        for u, v, _ in edges:
            degree[u] = degree.get(u, 0) + 1
        for e in batch.insertions:
            degree[e.u] = degree.get(e.u, 0) + 1
        scaled = [(u, v, 0.9 / degree[u]) for u, v, _ in edges]
        graph = build_graph(n, scaled, symmetric=False)
        scaled_batch = UpdateBatch(
            insertions=[Edge(e.u, e.v, 0.9 / degree[e.u]) for e in batch.insertions],
            deletions=batch.deletions,
        )
        algorithm = LinearSystemSolver(constants={0: 1.0}, tolerance=1e-11)
        engine = JetStreamEngine(graph, algorithm)
        engine.initial_compute()
        result = engine.apply_batch(scaled_batch)
        expected = reference_solve(graph.snapshot(), algorithm.constants)
        assert np.allclose(result.states, expected, atol=1e-6)


class TestDeleteCoalescingInvariants:
    @SETTINGS
    @given(
        payloads=st.lists(
            st.floats(min_value=1.0, max_value=50.0, allow_nan=False),
            min_size=2,
            max_size=10,
        )
    )
    def test_vap_keeps_most_progressed(self, payloads):
        queue = CoalescingQueue(
            make_algorithm("sssp", source=0),
            AcceleratorConfig(),
            DeletePolicy.VAP,
            16,
        )
        work = RoundWork()
        for i, payload in enumerate(payloads):
            queue.insert(Event(3, payload, 1, i), work)
        [batch] = queue.drain_round(work)
        assert len(batch) == 1
        assert batch[0].payload == min(payloads)

    @SETTINGS
    @given(
        sources=st.lists(
            st.integers(min_value=0, max_value=7), min_size=1, max_size=12
        )
    )
    def test_dap_overflow_preserves_every_source(self, sources):
        queue = CoalescingQueue(
            make_algorithm("sssp", source=0),
            AcceleratorConfig(),
            DeletePolicy.DAP,
            16,
        )
        queue.set_delete_coalescing(False)
        work = RoundWork()
        for source in sources:
            queue.insert(Event(3, 1.0, 1, source), work)
        [batch] = queue.drain_round(work)
        assert sorted(e.source for e in batch) == sorted(sources)


class TestPartialDrainEquivalence:
    @SETTINGS
    @given(
        data=graph_and_batch(max_n=10),
        rows=st.sampled_from([1, 2, 4]),
    )
    def test_drain_width_does_not_change_results(self, data, rows):
        n, edges, batch = data
        graph = build_graph(n, edges, symmetric=False)
        config = AcceleratorConfig(scheduler_rows_per_round=rows)
        engine = JetStreamEngine(graph, make_algorithm("sssp", source=0), config=config)
        engine.initial_compute()
        result = engine.apply_batch(batch)
        assert np.array_equal(result.states, reference.sssp(graph.snapshot(), 0))
