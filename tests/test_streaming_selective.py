"""JetStream streaming tests for selective algorithms (Algorithm 4/5)."""

import math

import numpy as np
import pytest

from repro import reference
from repro.algorithms import make_algorithm
from repro.core.policies import DeletePolicy
from repro.core.streaming import JetStreamEngine
from repro.graph.dynamic import DynamicGraph
from repro.streams import Edge, StreamGenerator, UpdateBatch

from conftest import assert_states_match, make_graph_for

POLICIES = [DeletePolicy.BASE, DeletePolicy.VAP, DeletePolicy.DAP]
SELECTIVE = ["sssp", "sswp", "bfs", "cc"]


def check_against_reference(engine, context=""):
    algorithm = engine.algorithm
    expected = reference.compute_reference(algorithm, engine.graph.snapshot())
    assert_states_match(algorithm, engine.states, expected, context)


class TestRandomStreams:
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("name", SELECTIVE)
    def test_streaming_matches_recompute(self, name, policy):
        algorithm = make_algorithm(name, source=0)
        graph = make_graph_for(algorithm, n=50, m=200, seed=21)
        engine = JetStreamEngine(graph, algorithm, policy=policy)
        engine.initial_compute()
        stream = StreamGenerator(graph, seed=22, insertion_ratio=0.6)
        for i in range(4):
            engine.apply_batch(stream.next_batch(12))
            check_against_reference(engine, f"{name}/{policy}/batch{i}")

    @pytest.mark.parametrize("ratio", [0.0, 0.3, 1.0])
    def test_compositions(self, ratio):
        algorithm = make_algorithm("sssp", source=0)
        graph = make_graph_for(algorithm, seed=23)
        engine = JetStreamEngine(graph, algorithm)
        engine.initial_compute()
        stream = StreamGenerator(graph, seed=24)
        for _ in range(3):
            engine.apply_batch(stream.next_batch(10, insertion_ratio=ratio))
            check_against_reference(engine)


class TestDeletionScenarios:
    def test_delete_bridge_disconnects(self):
        """Deleting the only path leaves downstream unreachable (identity)."""
        graph = DynamicGraph.from_edges([(0, 1, 1.0), (1, 2, 1.0)], 3)
        engine = JetStreamEngine(graph, make_algorithm("sssp", source=0))
        engine.initial_compute()
        result = engine.apply_batch(UpdateBatch(deletions=[Edge(0, 1)]))
        assert result.states[1] == math.inf
        assert result.states[2] == math.inf

    @pytest.mark.parametrize("policy", POLICIES)
    def test_delete_edge_into_root_restores_root(self, policy):
        """The root's value comes from an initial event; resetting it must
        not lose it (self-event re-injection)."""
        graph = DynamicGraph.from_edges([(1, 0, 1.0), (0, 2, 1.0)], 3)
        engine = JetStreamEngine(graph, make_algorithm("sssp", source=0), policy=policy)
        engine.initial_compute()
        result = engine.apply_batch(UpdateBatch(deletions=[Edge(1, 0)]))
        assert result.states[0] == 0.0
        assert result.states[2] == 1.0

    @pytest.mark.parametrize("policy", POLICIES)
    def test_cc_component_split(self, policy):
        """Deleting the bridge splits a component; the split-off side must
        rediscover its own minimum label."""
        graph = DynamicGraph(6, symmetric=True)
        for u, v in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]:
            graph.add_edge(u, v, 1.0, _count_version=False)
        engine = JetStreamEngine(graph, make_algorithm("cc"), policy=policy)
        engine.initial_compute()
        assert set(engine.states) == {0.0}
        result = engine.apply_batch(UpdateBatch(deletions=[Edge(2, 3)]))
        assert list(result.states[:3]) == [0.0, 0.0, 0.0]
        assert list(result.states[3:]) == [3.0, 3.0, 3.0]

    def test_delete_and_reroute(self):
        """After deleting the best path, the next-best path takes over."""
        graph = DynamicGraph.from_edges(
            [(0, 1, 1.0), (1, 3, 1.0), (0, 2, 5.0), (2, 3, 5.0)], 4
        )
        engine = JetStreamEngine(graph, make_algorithm("sssp", source=0))
        engine.initial_compute()
        assert engine.states[3] == 2.0
        result = engine.apply_batch(UpdateBatch(deletions=[Edge(1, 3)]))
        assert result.states[3] == 10.0

    def test_cyclic_stale_value_collapses(self):
        """A cycle fed only through a deleted edge must fully reset —
        the classic case where naive recovery leaves a self-supporting
        stale loop (paper Fig. 2)."""
        graph = DynamicGraph.from_edges(
            [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 1, 1.0)], 4
        )
        engine = JetStreamEngine(graph, make_algorithm("sssp", source=0))
        engine.initial_compute()
        result = engine.apply_batch(UpdateBatch(deletions=[Edge(0, 1)]))
        assert all(math.isinf(result.states[v]) for v in (1, 2, 3))

    def test_weight_change_idiom(self):
        """Weight modification = deletion + insertion in one batch (§2.1)."""
        graph = DynamicGraph.from_edges([(0, 1, 10.0)], 2)
        engine = JetStreamEngine(graph, make_algorithm("sssp", source=0))
        engine.initial_compute()
        result = engine.apply_batch(
            UpdateBatch(insertions=[Edge(0, 1, 3.0)], deletions=[Edge(0, 1)])
        )
        assert result.states[1] == 3.0


class TestInsertionScenarios:
    def test_insertion_improves_downstream(self):
        graph = DynamicGraph.from_edges([(0, 1, 10.0), (1, 2, 1.0)], 3)
        engine = JetStreamEngine(graph, make_algorithm("sssp", source=0))
        engine.initial_compute()
        result = engine.apply_batch(UpdateBatch(insertions=[Edge(0, 2, 2.0)]))
        assert result.states[2] == 2.0

    def test_insertion_reaches_unreachable(self):
        graph = DynamicGraph.from_edges([(0, 1, 1.0)], 3)
        engine = JetStreamEngine(graph, make_algorithm("bfs", source=0))
        engine.initial_compute()
        assert engine.states[2] == math.inf
        result = engine.apply_batch(UpdateBatch(insertions=[Edge(1, 2, 1.0)]))
        assert result.states[2] == 2.0

    def test_insertion_creates_vertex(self):
        """Vertex addition modelled as the first edge to the vertex (§2.1)."""
        graph = DynamicGraph.from_edges([(0, 1, 1.0)], 2)
        engine = JetStreamEngine(graph, make_algorithm("sssp", source=0))
        engine.initial_compute()
        result = engine.apply_batch(UpdateBatch(insertions=[Edge(1, 5, 2.0)]))
        assert len(result.states) == 6
        assert result.states[5] == 3.0
        assert math.isinf(result.states[4])

    def test_monotonic_stop(self):
        """An insertion worse than existing paths changes nothing (Fig 4b)."""
        graph = DynamicGraph.from_edges([(0, 1, 1.0), (0, 2, 1.0)], 3)
        engine = JetStreamEngine(graph, make_algorithm("sssp", source=0))
        engine.initial_compute()
        result = engine.apply_batch(UpdateBatch(insertions=[Edge(1, 2, 50.0)]))
        assert result.states[2] == 1.0
        assert result.vertices_reset == 0


class TestPolicyBehaviour:
    def _run_deletion(self, policy):
        algorithm = make_algorithm("sssp", source=0)
        graph = make_graph_for(algorithm, n=60, m=260, seed=31)
        engine = JetStreamEngine(graph, algorithm, policy=policy)
        engine.initial_compute()
        stream = StreamGenerator(graph, seed=32)
        return engine.apply_batch(stream.next_batch(20, insertion_ratio=0.0))

    def test_base_resets_most(self):
        resets = {p: self._run_deletion(p).vertices_reset for p in POLICIES}
        assert resets[DeletePolicy.BASE] >= resets[DeletePolicy.VAP]
        assert resets[DeletePolicy.BASE] >= resets[DeletePolicy.DAP]

    def test_policies_agree_on_result(self):
        states = [self._run_deletion(p).states for p in POLICIES]
        assert np.array_equal(states[0], states[1])
        assert np.array_equal(states[1], states[2])

    def test_dap_tracks_dependency(self):
        algorithm = make_algorithm("sssp", source=0)
        graph = DynamicGraph.from_edges([(0, 1, 1.0), (1, 2, 1.0)], 3)
        engine = JetStreamEngine(graph, algorithm, policy=DeletePolicy.DAP)
        engine.initial_compute()
        assert engine.core.dependency[1] == 0
        assert engine.core.dependency[2] == 1

    def test_vap_spares_more_progressed_receiver(self):
        """VAP: a delete arriving with a less progressed value than the
        receiver's state is discarded (§5.1)."""
        # 3 has two paths: via 1 (cost 2) and via 2 (cost 10).
        graph = DynamicGraph.from_edges(
            [(0, 1, 1.0), (0, 2, 5.0), (1, 3, 1.0), (2, 3, 5.0)], 4
        )
        engine = JetStreamEngine(
            graph, make_algorithm("sssp", source=0), policy=DeletePolicy.VAP
        )
        engine.initial_compute()
        # Deleting 2->3 contributes value 10 to vertex 3 whose state is 2.
        result = engine.apply_batch(UpdateBatch(deletions=[Edge(2, 3)]))
        assert result.vertices_reset == 0
        assert result.states[3] == 2.0


class TestApiContracts:
    def test_apply_before_initial_rejected(self):
        graph = DynamicGraph.from_edges([(0, 1, 1.0)], 2)
        engine = JetStreamEngine(graph, make_algorithm("sssp", source=0))
        with pytest.raises(RuntimeError):
            engine.apply_batch(UpdateBatch(insertions=[Edge(1, 0, 1.0)]))

    def test_missing_deletion_rejected(self):
        graph = DynamicGraph.from_edges([(0, 1, 1.0)], 2)
        engine = JetStreamEngine(graph, make_algorithm("sssp", source=0))
        engine.initial_compute()
        with pytest.raises(ValueError):
            engine.apply_batch(UpdateBatch(deletions=[Edge(1, 0)]))

    def test_duplicate_insertion_rejected(self):
        graph = DynamicGraph.from_edges([(0, 1, 1.0)], 2)
        engine = JetStreamEngine(graph, make_algorithm("sssp", source=0))
        engine.initial_compute()
        with pytest.raises(ValueError):
            engine.apply_batch(UpdateBatch(insertions=[Edge(0, 1, 2.0)]))

    def test_cc_requires_symmetric_graph(self):
        graph = DynamicGraph.from_edges([(0, 1, 1.0)], 2)
        with pytest.raises(ValueError):
            JetStreamEngine(graph, make_algorithm("cc"))

    def test_history_recorded(self):
        graph = DynamicGraph.from_edges([(0, 1, 1.0)], 2)
        engine = JetStreamEngine(graph, make_algorithm("sssp", source=0))
        engine.initial_compute()
        engine.apply_batch(UpdateBatch(insertions=[Edge(1, 0, 1.0)]))
        assert len(engine.history) == 2

    def test_query_result_is_copy(self):
        graph = DynamicGraph.from_edges([(0, 1, 1.0)], 2)
        engine = JetStreamEngine(graph, make_algorithm("sssp", source=0))
        engine.initial_compute()
        result = engine.query_result()
        result[0] = 123.0
        assert engine.states[0] == 0.0

    def test_metrics_phases_named(self):
        graph = DynamicGraph.from_edges([(0, 1, 1.0), (1, 2, 1.0)], 3)
        engine = JetStreamEngine(graph, make_algorithm("sssp", source=0))
        engine.initial_compute()
        result = engine.apply_batch(UpdateBatch(deletions=[Edge(1, 2)]))
        names = [p.name for p in result.metrics.phases]
        assert names == ["delete-propagation", "reevaluation"]
