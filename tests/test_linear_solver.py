"""Tests for the linear-equation-solver DAIC application."""

import numpy as np
import pytest

from repro.algorithms import LinearSystemSolver, make_algorithm
from repro.algorithms.base import AlgorithmKind
from repro.algorithms.linear import reference_solve
from repro.core.engine import GraphPulseEngine
from repro.core.streaming import JetStreamEngine
from repro.graph import generators
from repro.graph.dynamic import DynamicGraph
from repro.streams import Edge, StreamGenerator, UpdateBatch


def contractive_graph(n=30, m=90, seed=2, budget=0.8) -> DynamicGraph:
    """Random digraph whose out-weight sums stay below ``budget``."""
    rng = np.random.default_rng(seed)
    raw = generators.erdos_renyi(n, m, seed=seed, weighted=False)
    out_count = {}
    for u, _, _ in raw:
        out_count[u] = out_count.get(u, 0) + 1
    edges = [
        (u, v, budget / out_count[u] * (0.4 + 0.6 * rng.random()))
        for u, v, _ in raw
    ]
    return DynamicGraph.from_edges(edges, n)


class TestInterface:
    def test_kind(self):
        alg = LinearSystemSolver()
        assert alg.kind is AlgorithmKind.ACCUMULATIVE
        assert not alg.degree_dependent
        assert alg.weight_scaled_propagation

    def test_factory(self):
        alg = make_algorithm("linear", constants={2: 3.0})
        assert isinstance(alg, LinearSystemSolver)
        assert alg.constants == {2: 3.0}

    def test_propagate_scales_by_weight(self):
        alg = LinearSystemSolver()
        assert alg.propagate(2.0, 0.25, None) == 0.5
        assert alg.propagation_factor(None) == 1.0

    def test_bad_tolerance(self):
        with pytest.raises(ValueError):
            LinearSystemSolver(tolerance=0)

    def test_constant_out_of_range(self):
        graph = contractive_graph(n=5, m=8)
        alg = LinearSystemSolver(constants={99: 1.0})
        with pytest.raises(ValueError):
            alg.initial_events(graph.snapshot())

    def test_non_contractive_rejected(self):
        graph = DynamicGraph.from_edges([(0, 1, 0.7), (0, 2, 0.7)], 3)
        alg = LinearSystemSolver()
        with pytest.raises(ValueError, match="contraction"):
            alg.initial_events(graph.snapshot())

    def test_contraction_check_can_be_disabled(self):
        graph = DynamicGraph.from_edges([(0, 1, 0.7), (0, 2, 0.7)], 3)
        alg = LinearSystemSolver(check_contraction=False)
        assert alg.initial_events(graph.snapshot()) == [(0, 1.0)]


class TestStaticSolve:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_matches_dense_solver(self, seed):
        graph = contractive_graph(seed=seed)
        alg = LinearSystemSolver(constants={0: 1.0, 5: -2.0}, tolerance=1e-10)
        result = GraphPulseEngine(alg).compute(graph.snapshot())
        expected = reference_solve(graph.snapshot(), alg.constants)
        assert np.allclose(result.states, expected, atol=1e-6)

    def test_chain_closed_form(self):
        """x0 = 1; each hop scales by 0.5: x_k = 0.5^k."""
        graph = DynamicGraph.from_edges([(i, i + 1, 0.5) for i in range(4)], 5)
        alg = LinearSystemSolver(constants={0: 1.0}, tolerance=1e-12)
        result = GraphPulseEngine(alg).compute(graph.snapshot())
        assert np.allclose(result.states, [1.0, 0.5, 0.25, 0.125, 0.0625])

    def test_negative_constants(self):
        graph = contractive_graph(seed=4)
        alg = LinearSystemSolver(constants={1: -1.0}, tolerance=1e-10)
        result = GraphPulseEngine(alg).compute(graph.snapshot())
        expected = reference_solve(graph.snapshot(), alg.constants)
        assert np.allclose(result.states, expected, atol=1e-6)


class TestStreamingSolve:
    @pytest.mark.parametrize("two_phase", [False, True])
    def test_streaming_matches_dense(self, two_phase):
        """The non-degree-dependent accumulative deletion path: negative
        events only for the deleted edges, no sink expansion."""
        graph = contractive_graph(seed=5)
        alg = LinearSystemSolver(constants={0: 1.0}, tolerance=1e-11)
        engine = JetStreamEngine(graph, alg, two_phase_accumulative=two_phase)
        engine.initial_compute()
        rng = np.random.default_rng(6)
        for _ in range(3):
            live = sorted(graph.edges())
            u, v, w = live[int(rng.integers(0, len(live)))]
            batch = UpdateBatch(
                deletions=[Edge(u, v)],
                insertions=[Edge(u, v, w * 0.5)],  # weight change idiom
            )
            engine.apply_batch(batch)
            expected = reference_solve(graph.snapshot(), alg.constants)
            assert np.allclose(engine.states, expected, atol=1e-6)

    def test_insertion_only(self):
        graph = contractive_graph(seed=7)
        alg = LinearSystemSolver(constants={0: 1.0}, tolerance=1e-11)
        engine = JetStreamEngine(graph, alg)
        engine.initial_compute()
        # A fresh light edge keeps the operator contractive.
        free = [
            (u, v)
            for u in range(graph.num_vertices)
            for v in range(graph.num_vertices)
            if u != v and not graph.has_edge(u, v)
        ]
        u, v = free[0]
        engine.apply_batch(UpdateBatch(insertions=[Edge(u, v, 0.01)]))
        expected = reference_solve(graph.snapshot(), alg.constants)
        assert np.allclose(engine.states, expected, atol=1e-6)

    def test_deletion_only(self):
        graph = contractive_graph(seed=8)
        alg = LinearSystemSolver(constants={0: 1.0}, tolerance=1e-11)
        engine = JetStreamEngine(graph, alg)
        engine.initial_compute()
        u, v, _ = sorted(graph.edges())[0]
        engine.apply_batch(UpdateBatch(deletions=[Edge(u, v)]))
        expected = reference_solve(graph.snapshot(), alg.constants)
        assert np.allclose(engine.states, expected, atol=1e-6)
