"""Tests for the live metrics registry (repro.obs.metrics + scrape).

The central contract mirrors the tracer's: with the process-wide
``REGISTRY`` enabled, the counters it accumulates must equal the run's
in-process :class:`RunMetrics` totals exactly — on every engine substrate
— and with it disabled (the default) nothing is recorded and nothing is
perturbed.
"""

from __future__ import annotations

import json
import math
import urllib.error
import urllib.request

import pytest

from repro.algorithms import make_algorithm
from repro.core.metrics import RoundWork, RunMetrics
from repro.core.streaming import JetStreamEngine
from repro.host import Accelerator
from repro.obs import (
    MetricsServer,
    log_buckets,
    metrics_payload,
    render_prometheus,
    send_payload,
)
from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.streams import StreamGenerator

from conftest import make_graph_for

SUBSTRATES = [
    ("scalar", {}),
    ("vectorized", {}),
    ("sharded", {"num_engines": 4}),
]


@pytest.fixture
def registry():
    """The process-wide REGISTRY, enabled and clean; restored after."""
    REGISTRY.enable().reset()
    yield REGISTRY
    REGISTRY.disable().reset()


def run_stream(engine_mode: str, batches: int = 2, **kwargs):
    algorithm = make_algorithm("sssp", source=0)
    graph = make_graph_for(algorithm, n=40, m=160, seed=5)
    engine = JetStreamEngine(graph, algorithm, engine=engine_mode, **kwargs)
    stream = StreamGenerator(engine.graph, seed=6)
    results = [engine.initial_compute()]
    for _ in range(batches):
        results.append(engine.apply_batch(stream.next_batch(10)))
    return results


def family_total(snapshot: dict, name: str) -> float:
    """Sum a counter/gauge family's value across all label series."""
    for family in snapshot["families"]:
        if family["name"] == name:
            return sum(entry["value"] for entry in family["series"])
    return 0.0


# ----------------------------------------------------------------------
# Metric primitives
# ----------------------------------------------------------------------
class TestPrimitives:
    def test_counter_only_goes_up(self):
        c = Counter("x")
        c.inc()
        c.inc(5)
        assert c.value == 6
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_set_and_inc(self):
        g = Gauge("x")
        g.set(7)
        g.inc(-3)
        assert g.value == 4

    def test_log_buckets_geometry(self):
        bounds = log_buckets(1.0, 16.0, factor=2.0)
        assert bounds == (1.0, 2.0, 4.0, 8.0, 16.0)
        # The last bound always reaches hi, even when hi is not a power.
        assert log_buckets(1.0, 5.0, factor=2.0)[-1] == 8.0
        with pytest.raises(ValueError):
            log_buckets(0.0, 1.0)
        with pytest.raises(ValueError):
            log_buckets(1.0, 2.0, factor=1.0)

    def test_histogram_bucket_assignment(self):
        h = Histogram("x", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 3.0, 100.0):
            h.observe(value)
        # le semantics: a value equal to a bound lands in that bucket.
        assert h.counts == [2, 0, 1, 1]
        assert h.cumulative() == [2, 2, 3, 4]
        assert h.count == 4
        assert h.sum == pytest.approx(104.5)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("x", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("x", buckets=())


# ----------------------------------------------------------------------
# Registry behaviour
# ----------------------------------------------------------------------
class TestRegistry:
    def test_get_or_create_returns_same_series(self):
        reg = MetricsRegistry(enabled=True)
        a = reg.counter("c", "help")
        b = reg.counter("c")
        assert a is b
        assert reg.counter("c", kind="x") is not a  # distinct label set

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("c")
        with pytest.raises(ValueError):
            reg.gauge("c", mode="other")

    def test_value_and_get(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("c").inc(3)
        assert reg.value("c") == 3
        assert reg.get("missing") is None
        assert reg.value("missing") is None

    def test_reset_drops_everything(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("c").inc()
        reg.reset()
        assert reg.snapshot()["families"] == []

    def test_record_round_folds_work_vector(self):
        clock = iter([0.0, 0.25]).__next__
        reg = MetricsRegistry(enabled=True, clock=clock)
        work = RoundWork(
            events_processed=8,
            events_generated=5,
            queue_inserts=10,
            coalesce_ops=5,
            spill_bytes=256,
        )
        reg.record_round(work, dur_s=0.25, occupancy=3)
        assert reg.value("repro_rounds_total") == 1
        assert reg.value("repro_events_processed_total") == 8
        assert reg.value("repro_queue_occupancy") == 3
        latency = reg.get("repro_round_latency_seconds")
        assert latency.count == 1 and latency.sum == pytest.approx(0.25)
        ratio = reg.get("repro_round_coalesce_ratio")
        assert ratio.count == 1 and ratio.sum == pytest.approx(0.5)
        spill = reg.get("repro_round_spill_bytes")
        assert spill.count == 1 and spill.sum == pytest.approx(256)

    def test_round_scope_times_with_the_injected_clock(self):
        clock = iter([1.0, 1.5]).__next__
        reg = MetricsRegistry(enabled=True, clock=clock)
        with reg.round_scope(RoundWork(events_processed=2)):
            pass
        assert reg.value("repro_rounds_total") == 1
        assert reg.get("repro_round_latency_seconds").sum == pytest.approx(0.5)

    def test_disabled_record_helpers_are_inert(self):
        reg = MetricsRegistry(enabled=False)
        reg.record_round(RoundWork(events_processed=1), 0.1, occupancy=2)
        reg.record_noc(1, 2, 3)
        reg.record_transfer("graph_uploads", 64)
        reg.record_express_update("insert", "safe", "insert-no-improvement", 1e-6, 3, 4)
        with reg.round_scope(RoundWork(events_processed=1)):
            pass
        assert reg.snapshot()["families"] == []


# ----------------------------------------------------------------------
# Prometheus rendering
# ----------------------------------------------------------------------
class TestPrometheusExport:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("repro_rounds_total", "Scheduler rounds.").inc(3)
        reg.gauge("repro_queue_occupancy").set(7)
        text = reg.to_prometheus()
        assert "# HELP repro_rounds_total Scheduler rounds." in text
        assert "# TYPE repro_rounds_total counter" in text
        assert "repro_rounds_total 3" in text
        assert "repro_queue_occupancy 7" in text
        assert text.endswith("\n")

    def test_labels_render_sorted(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("c", zeta="z", alpha="a").inc()
        assert 'c{alpha="a",zeta="z"} 1' in reg.to_prometheus()

    def test_histogram_cumulative_buckets_and_inf(self):
        reg = MetricsRegistry(enabled=True)
        h = reg.histogram("h", buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 99.0):
            h.observe(value)
        text = reg.to_prometheus()
        assert 'h_bucket{le="1"} 1' in text
        assert 'h_bucket{le="2"} 2' in text
        assert 'h_bucket{le="+Inf"} 3' in text
        assert "h_sum 101" in text
        assert "h_count 3" in text

    def test_render_prometheus_round_trips_json_snapshot(self, tmp_path):
        reg = MetricsRegistry(enabled=True)
        reg.counter("c").inc(2)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        path = tmp_path / "metrics.json"
        reg.dump_json(str(path))
        snapshot = json.loads(path.read_text())
        assert snapshot["format"] == "repro-metrics"
        assert render_prometheus(snapshot) == reg.to_prometheus()

    def test_render_prometheus_rejects_foreign_json(self):
        with pytest.raises(ValueError):
            render_prometheus({"rows": []})


# ----------------------------------------------------------------------
# Instrumentation parity: registry counters == RunMetrics totals
# ----------------------------------------------------------------------
class TestInstrumentationParity:
    @pytest.mark.parametrize(
        "mode,kwargs", SUBSTRATES, ids=[m for m, _ in SUBSTRATES]
    )
    def test_counters_match_run_metrics(self, registry, mode, kwargs):
        results = run_stream(mode, **kwargs)
        snapshot = registry.snapshot()
        metrics = [r.metrics for r in results]
        assert family_total(
            snapshot, "repro_events_processed_total"
        ) == sum(m.total.events_processed for m in metrics)
        assert family_total(snapshot, "repro_queue_inserts_total") == sum(
            m.total.queue_inserts for m in metrics
        )
        assert family_total(snapshot, "repro_coalesce_ops_total") == sum(
            m.total.coalesce_ops for m in metrics
        )
        assert family_total(snapshot, "repro_spill_bytes_total") == sum(
            m.total.spill_bytes for m in metrics
        )
        assert family_total(snapshot, "repro_rounds_total") == sum(
            p.num_rounds for m in metrics for p in m.phases
        )
        assert family_total(snapshot, "repro_phases_total") == sum(
            len(m.phases) for m in metrics
        )
        # Run accounting: one "initial" plus one "batch" per applied batch.
        assert registry.value("repro_runs_total", kind="initial") == 1
        assert registry.value("repro_runs_total", kind="batch") == len(results) - 1
        latency = registry.get("repro_round_latency_seconds")
        assert latency.count == family_total(snapshot, "repro_rounds_total")

    def test_noc_counters_match_summary(self, registry):
        results = run_stream("sharded", num_engines=4)
        combined = {"events_local": 0, "events_remote": 0, "flits": 0}
        for result in results:
            noc = result.metrics.noc_summary()
            for key in combined:
                combined[key] += noc[key]
        assert (registry.value("repro_noc_events_local_total") or 0) == combined[
            "events_local"
        ]
        assert (registry.value("repro_noc_events_remote_total") or 0) == combined[
            "events_remote"
        ]
        assert (registry.value("repro_noc_flits_total") or 0) == combined["flits"]
        fraction = registry.get("repro_noc_remote_fraction")
        if combined["events_local"] + combined["events_remote"]:
            assert fraction is not None and fraction.count > 0

    def test_transfer_counters_match_transfer_stats(self, registry):
        accel = Accelerator()
        session = accel.load_graph(
            [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)], num_vertices=4
        )
        session.configure("sssp", source=0)
        session.run()
        session.push_updates(insertions=[(0, 3, 2.0)])
        session.run()
        session.read_results()
        snapshot = registry.snapshot()
        assert family_total(
            snapshot, "repro_transfer_bytes_total"
        ) == session.transfer_stats().total

    def test_disabled_registry_records_nothing(self):
        REGISTRY.disable().reset()
        run_stream("vectorized")
        assert REGISTRY.snapshot()["families"] == []

    def test_enabled_registry_does_not_perturb_results(self, registry):
        enabled_results = run_stream("vectorized")
        registry.disable()
        disabled_results = run_stream("vectorized")
        for a, b in zip(enabled_results, disabled_results):
            assert a.states.tobytes() == b.states.tobytes()
            assert a.metrics.to_rows() == b.metrics.to_rows()


# ----------------------------------------------------------------------
# Express lane: per-update counters and deterministic scan histogram
# ----------------------------------------------------------------------
def run_express(count: int = 24, seed: int = 9):
    """Drive ``count`` seeded single updates through the express lane."""
    import numpy as np

    from repro.core.fastpath import ExpressLane
    from repro.core.policies import DeletePolicy

    algorithm = make_algorithm("sssp", source=0)
    graph = make_graph_for(algorithm, n=40, m=160, seed=5)
    engine = JetStreamEngine(graph, algorithm, policy=DeletePolicy.DAP)
    engine.initial_compute()
    lane = ExpressLane(engine)
    generator = StreamGenerator(engine.graph, seed=seed)
    rng = np.random.default_rng(seed + 1)
    results = []
    # The generator samples from the live edge set of the engine's graph,
    # which lane.apply mutates — the stream stays consistent by itself.
    for _ in range(count):
        ratio = 0.0 if rng.random() < 0.3 else 1.0
        batch = generator.next_batch(1, insertion_ratio=ratio)
        if batch.insertions:
            e = batch.insertions[0]
            results.append(lane.apply(e.u, e.v, e.w, "insert"))
        else:
            e = batch.deletions[0]
            results.append(lane.apply(e.u, e.v, e.w, "delete"))
    stats = dict(lane.stats)
    engine.close()
    return results, stats


class TestExpressLaneMetrics:
    COUNT = 24

    def test_counter_totals_match_update_count(self, registry):
        results, stats = run_express(count=self.COUNT)
        snapshot = registry.snapshot()
        # Every update is counted exactly once, in every express family.
        assert family_total(
            snapshot, "repro_express_updates_total"
        ) == self.COUNT
        assert family_total(
            snapshot, "repro_express_reasons_total"
        ) == self.COUNT
        scan = registry.get("repro_express_scan_entries")
        assert scan is not None and scan.count == self.COUNT
        lat_count = 0
        for outcome in ("safe", "unsafe"):
            hist = registry.get(
                "repro_express_latency_seconds", outcome=outcome
            )
            if hist is not None:
                lat_count += hist.count
        assert lat_count == self.COUNT
        # Per-(op, outcome) series partition the total and match the lane.
        safe = sum(1 for r in results if r.safe)
        assert safe == stats["safe_applied"]
        for op in ("insert", "delete"):
            for outcome in ("safe", "unsafe"):
                expected = sum(
                    1
                    for r in results
                    if r.op == op and r.safe == (outcome == "safe")
                )
                actual = (
                    registry.value(
                        "repro_express_updates_total", op=op, outcome=outcome
                    )
                    or 0
                )
                assert actual == expected, (op, outcome)
        ratio = registry.value("repro_express_safe_ratio")
        assert ratio == pytest.approx(safe / self.COUNT)

    def test_scan_histogram_buckets_exactly_deterministic(self, registry):
        """Same seed, same graph -> bit-equal scan-work bucket vector.

        The scan histogram observes deterministic work counters (adjacency
        entries + state reads), never wall clock, so two identical runs
        must land every observation in the same bucket.
        """
        run_express(count=self.COUNT, seed=9)
        scan = registry.get("repro_express_scan_entries")
        first_counts = list(scan.counts)
        first_sum = scan.sum
        first_reasons = {
            tuple(sorted(entry["labels"].items())): entry["value"]
            for family in registry.snapshot()["families"]
            if family["name"] == "repro_express_reasons_total"
            for entry in family["series"]
        }
        registry.reset()
        run_express(count=self.COUNT, seed=9)
        scan = registry.get("repro_express_scan_entries")
        assert list(scan.counts) == first_counts
        assert scan.sum == first_sum
        second_reasons = {
            tuple(sorted(entry["labels"].items())): entry["value"]
            for family in registry.snapshot()["families"]
            if family["name"] == "repro_express_reasons_total"
            for entry in family["series"]
        }
        assert second_reasons == first_reasons
        assert sum(first_counts) == self.COUNT


# ----------------------------------------------------------------------
# Sharded substrate: per-engine utilization + worker-pool lifecycle
# ----------------------------------------------------------------------
class TestShardedPoolMetrics:
    def test_per_engine_counters_match_utilization(self, registry):
        results = run_stream("sharded", num_engines=4)
        metrics = [r.metrics for r in results]
        expected = [RoundWork() for _ in range(4)]
        for m in metrics:
            for engine_id, work in enumerate(m.per_engine_totals()):
                expected[engine_id].merge(work)
        for engine_id, work in enumerate(expected):
            assert (
                registry.value(
                    "repro_engine_events_processed_total", engine=str(engine_id)
                )
                or 0
            ) == work.events_processed
            assert (
                registry.value(
                    "repro_engine_events_generated_total", engine=str(engine_id)
                )
                or 0
            ) == work.events_generated
        # The labelled series partition the unlabelled totals exactly...
        snapshot = registry.snapshot()
        assert family_total(
            snapshot, "repro_engine_events_processed_total"
        ) == family_total(snapshot, "repro_events_processed_total")
        # ...so per-engine fractions equal RunMetrics.engine_utilization.
        processed = sum(w.events_processed for w in expected)
        fractions = [
            (
                registry.value(
                    "repro_engine_events_processed_total", engine=str(i)
                )
                or 0
            )
            / processed
            for i in range(4)
        ]
        combined = RunMetrics(phases=[p for m in metrics for p in m.phases])
        assert fractions == pytest.approx(combined.engine_utilization())

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_pool_spawn_and_reuse_counters(self, registry, backend):
        from repro.core import parallel

        # Drain warm pools parked by earlier tests so spawn counts are
        # deterministic.
        for pools in parallel._PROCESS_POOL_CACHE.values():
            while pools:
                pools.pop().close()
        run_stream("sharded", num_engines=4, backend=backend)
        run_stream("sharded", num_engines=4, backend=backend)
        spawns = registry.value(
            "repro_shard_pool_spawns_total", backend=backend
        )
        reuses = registry.value(
            "repro_shard_pool_reuse_total", backend=backend
        )
        if backend == "thread":
            # One persistent pool per engine instance; each later phase of
            # a run rebinds it rather than building a new one.
            assert spawns == 2
        else:
            # The warm cache revives the first engine's pool for the
            # second — exactly one set of worker processes is ever built.
            assert spawns == 1
        assert (reuses or 0) >= 1
        workers = registry.value("repro_shard_pool_workers", backend=backend)
        assert workers is not None and workers >= 1


# ----------------------------------------------------------------------
# Live scrape endpoint
# ----------------------------------------------------------------------
class TestMetricsServer:
    def scrape(self, url: str) -> str:
        with urllib.request.urlopen(url, timeout=5) as response:
            assert response.status == 200
            return response.read().decode("utf-8")

    def parse_value(self, text: str, name: str) -> float:
        for line in text.splitlines():
            if line.startswith(name + " ") or line.startswith(name + "{"):
                return float(line.rsplit(" ", 1)[1])
        raise AssertionError(f"{name} not found in scrape:\n{text}")

    def test_serves_strictly_increasing_counters_mid_run(self, registry):
        algorithm = make_algorithm("sssp", source=0)
        graph = make_graph_for(algorithm, n=40, m=160, seed=5)
        engine = JetStreamEngine(graph, algorithm, engine="vectorized")
        stream = StreamGenerator(engine.graph, seed=6)
        with MetricsServer(registry, port=0) as server:
            assert server.port != 0
            readings = []
            engine.initial_compute()
            readings.append(
                self.parse_value(
                    self.scrape(server.url), "repro_events_processed_total"
                )
            )
            for _ in range(2):
                engine.apply_batch(stream.next_batch(10))
                readings.append(
                    self.parse_value(
                        self.scrape(server.url), "repro_events_processed_total"
                    )
                )
        assert all(b > a for a, b in zip(readings, readings[1:])), readings
        assert readings[0] > 0

    def test_serves_json_snapshot_and_404(self, registry):
        registry.counter("repro_rounds_total").inc(2)
        with MetricsServer(registry) as server:
            base = f"http://{server.host}:{server.port}"
            snapshot = json.loads(self.scrape(base + "/metrics.json"))
            assert snapshot["format"] == "repro-metrics"
            assert family_total(snapshot, "repro_rounds_total") == 2
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(base + "/nope", timeout=5)
            assert err.value.code == 404

    def test_content_type_is_prometheus_text(self, registry):
        with MetricsServer(registry) as server:
            with urllib.request.urlopen(server.url, timeout=5) as response:
                assert response.headers["Content-Type"].startswith(
                    "text/plain; version=0.0.4"
                )

    def test_stop_is_idempotent(self, registry):
        server = MetricsServer(registry).start()
        port = server.port
        assert port > 0
        server.stop()
        server.stop()
        # A fresh start binds again (possibly on a different free port).
        server.start()
        assert server.port > 0
        server.stop()

    def test_port_survives_stop(self, registry):
        """Regression: after stop() the ``port`` property used to fall
        back to the *requested* port — a stale ``0`` for auto-bind — so
        late log lines and test assertions read a meaningless address."""
        server = MetricsServer(registry, port=0).start()
        bound = server.port
        assert bound > 0
        server.stop()
        assert server.port == bound

    def test_head_request_sends_headers_without_body(self, registry):
        registry.counter("repro_rounds_total").inc(1)
        with MetricsServer(registry) as server:
            request = urllib.request.Request(server.url, method="HEAD")
            with urllib.request.urlopen(request, timeout=5) as response:
                assert response.status == 200
                assert int(response.headers["Content-Length"]) > 0
                assert response.read() == b""


class TestSendPayloadHardening:
    """Regression: a client dropping the connection mid-write used to
    kill the handler with an unhandled BrokenPipeError traceback."""

    class _FakeHandler:
        """Just enough of BaseHTTPRequestHandler for send_payload."""

        def __init__(self, fail_with=None):
            self.close_connection = False
            self.headers_sent = []
            self.body = b""
            self._fail_with = fail_with
            handler = self

            class _WFile:
                def write(self, data):
                    if handler._fail_with is not None:
                        raise handler._fail_with
                    handler.body += data

            self.wfile = _WFile()

        def send_response(self, status):
            self.status = status

        def send_header(self, key, value):
            self.headers_sent.append((key, value))

        def end_headers(self):
            pass

    @pytest.mark.parametrize(
        "exc", [BrokenPipeError(), ConnectionResetError(), TimeoutError()]
    )
    def test_client_disconnect_is_swallowed(self, exc):
        handler = self._FakeHandler(fail_with=exc)
        ok = send_payload(handler, 200, "text/plain", b"hello")
        assert ok is False
        assert handler.close_connection is True

    def test_complete_write_returns_true(self):
        handler = self._FakeHandler()
        ok = send_payload(handler, 200, "text/plain", b"hello")
        assert ok is True
        assert handler.body == b"hello"
        assert ("Content-Length", "5") in handler.headers_sent
        assert handler.close_connection is False

    def test_head_only_skips_the_body_write(self):
        # head_only must not touch wfile at all — a HEAD response to a
        # gone client would otherwise still raise.
        handler = self._FakeHandler(fail_with=BrokenPipeError())
        ok = send_payload(handler, 200, "text/plain", b"hello", head_only=True)
        assert ok is True
        assert ("Content-Length", "5") in handler.headers_sent


class TestMetricsPayloadRouting:
    def test_routes_and_fallthrough(self, registry):
        registry.counter("repro_rounds_total").inc(3)
        ctype, body = metrics_payload(registry, "/metrics")
        assert ctype.startswith("text/plain; version=0.0.4")
        assert b"repro_rounds_total 3" in body
        ctype, body = metrics_payload(registry, "/metrics.json")
        assert ctype == "application/json"
        assert json.loads(body)["format"] == "repro-metrics"
        # Paths the metrics endpoint does not own fall through to the host.
        assert metrics_payload(registry, "/healthz") is None


def test_histogram_inf_formatting_in_exposition():
    reg = MetricsRegistry(enabled=True)
    reg.histogram("h", buckets=(1.0,)).observe(math.inf)
    text = reg.to_prometheus()
    assert 'h_bucket{le="+Inf"} 1' in text
