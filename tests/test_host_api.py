"""Tests for the host-side co-processor API (§4.1) and the NoC model."""

import numpy as np
import pytest

from repro import reference
from repro.core.config import AcceleratorConfig
from repro.host import Accelerator, HostApiError
from repro.sim.noc import CrossbarModel
from repro.sim.timing import AcceleratorTimingModel


EDGES = [(0, 1, 2.0), (1, 2, 3.0), (0, 2, 9.0), (2, 3, 1.0)]


class TestSessionLifecycle:
    def test_full_protocol(self):
        session = Accelerator().load_graph(EDGES)
        session.configure("sssp", source=0)
        session.run()
        states = session.read_results()
        assert list(states) == [0.0, 2.0, 5.0, 6.0]

    def test_streaming_round_trip(self):
        session = Accelerator().load_graph(EDGES)
        session.configure("sssp", source=0)
        session.run()
        session.push_updates(insertions=[(3, 1, 1.0)], deletions=[(0, 1)])
        result = session.run()
        expected = reference.sssp(session.graph.snapshot(), 0)
        assert np.array_equal(result.states, expected)

    def test_run_before_configure_rejected(self):
        session = Accelerator().load_graph(EDGES)
        with pytest.raises(HostApiError):
            session.run()

    def test_read_before_run_rejected(self):
        session = Accelerator().load_graph(EDGES)
        session.configure("sssp")
        with pytest.raises(HostApiError):
            session.read_results()

    def test_second_run_needs_staged_batch(self):
        session = Accelerator().load_graph(EDGES)
        session.configure("sssp")
        session.run()
        with pytest.raises(HostApiError):
            session.run()

    def test_double_stage_rejected(self):
        session = Accelerator().load_graph(EDGES)
        session.configure("sssp")
        session.run()
        session.push_updates(insertions=[(3, 0, 1.0)])
        with pytest.raises(HostApiError):
            session.push_updates(insertions=[(3, 1, 1.0)])

    def test_cc_requires_symmetric_load(self):
        session = Accelerator().load_graph(EDGES)
        with pytest.raises(HostApiError):
            session.configure("cc")

    def test_symmetric_load(self):
        session = Accelerator().load_graph(EDGES, symmetric=True)
        session.configure("cc")
        session.run()
        assert set(session.read_results()) == {0.0}

    def test_sessions_tracked(self):
        accel = Accelerator()
        accel.load_graph(EDGES)
        accel.load_graph(EDGES)
        assert len(accel.sessions) == 2

    def test_reconfigure_after_run_starts_fresh_query(self):
        """Regression: configure() after a completed run used to leave
        _last_result stale, so the next run() demanded a staged batch for
        an engine that never ran initial_compute()."""
        session = Accelerator().load_graph(EDGES)
        session.configure("sssp", source=0)
        session.run()
        session.configure("bfs", source=0)
        result = session.run()  # must be an initial evaluation, not a batch
        expected = reference.bfs(session.graph.snapshot(), 0)
        assert np.array_equal(result.states, expected)

    def test_reconfigure_resets_read_results(self):
        session = Accelerator().load_graph(EDGES)
        session.configure("sssp", source=0)
        session.run()
        session.read_results()
        session.configure("bfs", source=0)
        with pytest.raises(HostApiError):
            session.read_results()  # new query has not run yet
        session.run()
        states = session.read_results()
        assert np.array_equal(states, reference.bfs(session.graph.snapshot(), 0))

    def test_reconfigure_with_staged_batch_rejected(self):
        session = Accelerator().load_graph(EDGES)
        session.configure("sssp", source=0)
        session.run()
        session.push_updates(insertions=[(3, 0, 1.0)])
        with pytest.raises(HostApiError, match="staged"):
            session.configure("bfs", source=0)

    def test_empty_batch_is_legal(self):
        """An empty push_updates() batch runs and changes nothing."""
        session = Accelerator().load_graph(EDGES)
        session.configure("sssp", source=0)
        before = session.run().states.copy()
        session.push_updates()
        result = session.run()
        assert np.array_equal(result.states, before)
        assert session.graph.version == 1


class TestExpressLaneProtocol:
    def test_apply_update_before_configure_rejected(self):
        session = Accelerator().load_graph(EDGES)
        with pytest.raises(HostApiError, match="configure"):
            session.apply_update(0, 3, 1.0)

    def test_apply_update_before_initial_run_rejected(self):
        """Regression: the lane classifies against a *converged* state, so
        a configured-but-never-run session must refuse with a clear error
        instead of reading uninitialized state arrays."""
        session = Accelerator().load_graph(EDGES)
        session.configure("sssp", source=0)
        with pytest.raises(HostApiError, match="run\\(\\) the initial evaluation"):
            session.apply_update(0, 3, 1.0)
        # The refusal left the protocol intact: run() still works.
        session.run()
        assert list(session.read_results()) == [0.0, 2.0, 5.0, 6.0]

    def test_apply_update_cannot_overtake_staged_batch(self):
        session = Accelerator().load_graph(EDGES)
        session.configure("sssp", source=0)
        session.run()
        session.push_updates(insertions=[(3, 0, 1.0)])
        with pytest.raises(HostApiError, match="staged"):
            session.apply_update(0, 3, 1.0)

    def test_safe_update_applies_without_engine_run(self):
        session = Accelerator().load_graph(EDGES)
        session.configure("sssp", source=0)
        session.run()
        result = session.apply_update(1, 3, 0.5, "insert")
        assert result.safe and result.reason == "insert-local-improvement"
        assert result.new_state == (3, 2.5)
        assert list(session.read_results()) == [0.0, 2.0, 5.0, 2.5]
        assert session.express_stats()["safe_applied"] == 1
        assert session.express_stats()["engine_fallthroughs"] == 0
        # Express states match a full incremental run's answer.
        expected = reference.sssp(session.graph.snapshot(), 0)
        assert np.array_equal(session.read_results(), expected)

    def test_unsafe_update_falls_through_to_engine(self):
        session = Accelerator().load_graph(EDGES)
        session.configure("sssp", source=0)
        session.run()
        result = session.apply_update(0, 1, op="delete")
        assert not result.safe
        assert result.engine_result is not None
        assert session.last_result is result.engine_result
        assert session.express_stats()["engine_fallthroughs"] == 1
        expected = reference.sssp(session.graph.snapshot(), 0)
        assert np.array_equal(session.read_results(), expected)

    def test_reconfigure_drops_the_lane(self):
        session = Accelerator().load_graph(EDGES)
        session.configure("sssp", source=0)
        session.run()
        session.apply_update(1, 3, 0.5, "insert")
        session.configure("bfs", source=0)
        assert session.express_stats() == {
            "safe_applied": 0,
            "engine_fallthroughs": 0,
            "resyncs": 0,
        }
        with pytest.raises(HostApiError, match="run\\(\\) the initial evaluation"):
            session.apply_update(0, 3, 1.0)

    def test_fallthrough_transfers_match_batch_path(self):
        """Regression: the engine fallthrough swaps a fresh CSR exactly
        like run() but used to skip run()'s per-batch ``graph_uploads``
        record, so the same update was accounted differently depending on
        which path executed it."""
        from repro.graph.csr import EDGE_ENTRY_BYTES

        express = Accelerator().load_graph(EDGES)
        express.configure("sssp", source=0)
        express.run()
        batch = Accelerator().load_graph(EDGES)
        batch.configure("sssp", source=0)
        batch.run()

        before_express = express.transfer_stats().graph_uploads
        before_batch = batch.transfer_stats().graph_uploads
        result = express.apply_update(0, 1, op="delete")  # load-bearing
        assert not result.safe and result.engine_result is not None
        batch.push_updates(deletions=[(0, 1)])
        batch.run()

        delta_express = express.transfer_stats().graph_uploads - before_express
        delta_batch = batch.transfer_stats().graph_uploads - before_batch
        assert delta_express == delta_batch == 2 * EDGE_ENTRY_BYTES

    def test_express_updates_counted_as_transfers(self):
        config = AcceleratorConfig()
        session = Accelerator(config).load_graph(EDGES)
        session.configure("sssp", source=0)
        session.run()
        session.apply_update(1, 3, 0.5, "insert")
        session.apply_update(0, 3, 9.0, "insert")
        stats = session.transfer_stats()
        assert stats.update_records == 2 * config.stream_record_bytes


class TestSessionClose:
    def test_close_deregisters_from_accelerator(self):
        """Regression: close() used to leave the session in
        ``Accelerator.sessions`` forever — a leak for any long-running
        host that opens and closes many sessions."""
        accelerator = Accelerator()
        session = accelerator.load_graph(EDGES)
        assert accelerator.sessions == [session]
        session.close()
        assert accelerator.sessions == []
        assert session.closed

    def test_close_is_idempotent(self):
        session = Accelerator().load_graph(EDGES)
        session.close()
        session.close()  # second close is a no-op, not an error
        assert session.closed

    def test_accelerator_close_tolerates_already_closed_sessions(self):
        accelerator = Accelerator()
        first = accelerator.load_graph(EDGES)
        second = accelerator.load_graph(EDGES)
        first.close()
        accelerator.close()  # must not trip over the deregistered session
        assert second.closed
        assert accelerator.sessions == []

    def test_closed_session_refuses_configure(self):
        session = Accelerator().load_graph(EDGES)
        session.close()
        with pytest.raises(HostApiError, match="closed"):
            session.configure("sssp", source=0)


class TestExpressStatsShape:
    def test_laneless_stats_match_lane_keys(self):
        """Regression: the lane-less zero dict was hardcoded and could
        silently drift from ``ExpressLane.stats`` when a counter is
        added; both now derive from ``EXPRESS_STAT_KEYS``."""
        from repro.core.fastpath import EXPRESS_STAT_KEYS

        session = Accelerator().load_graph(EDGES)
        session.configure("sssp", source=0)
        assert set(session.express_stats()) == set(EXPRESS_STAT_KEYS)
        session.run()
        session.apply_update(1, 3, 0.5, "insert")  # instantiates the lane
        assert set(session.express_stats()) == set(EXPRESS_STAT_KEYS)
        assert set(session._express.stats) == set(EXPRESS_STAT_KEYS)


class TestTransferAccounting:
    def test_upload_counted(self):
        session = Accelerator().load_graph(EDGES)
        stats = session.transfer_stats()
        assert stats.graph_uploads > 0
        assert stats.update_records == 0

    def test_batch_and_readback_counted(self):
        config = AcceleratorConfig()
        session = Accelerator(config).load_graph(EDGES)
        session.configure("sssp")
        session.run()
        session.push_updates(insertions=[(3, 0, 1.0)])
        session.run()
        session.read_results()
        stats = session.transfer_stats()
        assert stats.update_records == config.stream_record_bytes
        assert stats.results_read == 4 * 8
        assert stats.total == (
            stats.graph_uploads + stats.update_records + stats.results_read
        )

    def test_empty_batch_transfers_nothing(self):
        session = Accelerator().load_graph(EDGES)
        session.configure("sssp")
        session.run()
        session.push_updates()
        session.run()
        assert session.transfer_stats().update_records == 0

    def test_deletion_only_batch_counted(self):
        """Deletion records cross the bus like insertions do."""
        config = AcceleratorConfig()
        session = Accelerator(config).load_graph(EDGES)
        session.configure("sssp")
        session.run()
        session.push_updates(deletions=[(0, 1), (2, 3)])
        session.run()
        stats = session.transfer_stats()
        assert stats.update_records == 2 * config.stream_record_bytes

    def test_transfer_stats_accumulate_across_reconfigure(self):
        session = Accelerator().load_graph(EDGES)
        session.configure("sssp")
        session.run()
        session.read_results()
        read_before = session.transfer_stats().results_read
        session.configure("bfs")
        session.run()
        session.read_results()
        assert session.transfer_stats().results_read == 2 * read_before


class TestCrossbarModel:
    def test_flits_scale_with_event_size(self):
        config = AcceleratorConfig(noc_flit_bytes=8)
        wide = CrossbarModel(config, event_bytes=14)
        narrow = CrossbarModel(config, event_bytes=8)
        assert wide.flits_per_event > narrow.flits_per_event

    def test_contention_factor_above_one(self):
        model = CrossbarModel(AcceleratorConfig())
        estimate = model.round_cycles(5000)
        assert estimate.contention_factor > 1.0

    def test_contention_shrinks_with_load(self):
        """Relative imbalance falls as the per-port load grows."""
        model = CrossbarModel(AcceleratorConfig())
        light = model.round_cycles(100).contention_factor
        heavy = model.round_cycles(1_000_000).contention_factor
        assert heavy < light

    def test_zero_events(self):
        estimate = CrossbarModel(AcceleratorConfig()).round_cycles(0)
        assert estimate.flits == 0
        assert estimate.contention_factor == 1.0

    def test_timing_model_contention_slower(self):
        from repro.core.metrics import RunMetrics

        metrics = RunMetrics()
        phase = metrics.phase("reevaluation")
        work = phase.new_round()
        work.queue_inserts = 100_000
        flat = AcceleratorTimingModel().run_time(metrics)
        contended = AcceleratorTimingModel(model_noc_contention=True).run_time(metrics)
        assert contended.total_cycles >= flat.total_cycles
