"""Tests for the host-side co-processor API (§4.1) and the NoC model."""

import numpy as np
import pytest

from repro import reference
from repro.core.config import AcceleratorConfig
from repro.host import Accelerator, HostApiError
from repro.sim.noc import CrossbarModel
from repro.sim.timing import AcceleratorTimingModel


EDGES = [(0, 1, 2.0), (1, 2, 3.0), (0, 2, 9.0), (2, 3, 1.0)]


class TestSessionLifecycle:
    def test_full_protocol(self):
        session = Accelerator().load_graph(EDGES)
        session.configure("sssp", source=0)
        session.run()
        states = session.read_results()
        assert list(states) == [0.0, 2.0, 5.0, 6.0]

    def test_streaming_round_trip(self):
        session = Accelerator().load_graph(EDGES)
        session.configure("sssp", source=0)
        session.run()
        session.push_updates(insertions=[(3, 1, 1.0)], deletions=[(0, 1)])
        result = session.run()
        expected = reference.sssp(session.graph.snapshot(), 0)
        assert np.array_equal(result.states, expected)

    def test_run_before_configure_rejected(self):
        session = Accelerator().load_graph(EDGES)
        with pytest.raises(HostApiError):
            session.run()

    def test_read_before_run_rejected(self):
        session = Accelerator().load_graph(EDGES)
        session.configure("sssp")
        with pytest.raises(HostApiError):
            session.read_results()

    def test_second_run_needs_staged_batch(self):
        session = Accelerator().load_graph(EDGES)
        session.configure("sssp")
        session.run()
        with pytest.raises(HostApiError):
            session.run()

    def test_double_stage_rejected(self):
        session = Accelerator().load_graph(EDGES)
        session.configure("sssp")
        session.run()
        session.push_updates(insertions=[(3, 0, 1.0)])
        with pytest.raises(HostApiError):
            session.push_updates(insertions=[(3, 1, 1.0)])

    def test_cc_requires_symmetric_load(self):
        session = Accelerator().load_graph(EDGES)
        with pytest.raises(HostApiError):
            session.configure("cc")

    def test_symmetric_load(self):
        session = Accelerator().load_graph(EDGES, symmetric=True)
        session.configure("cc")
        session.run()
        assert set(session.read_results()) == {0.0}

    def test_sessions_tracked(self):
        accel = Accelerator()
        accel.load_graph(EDGES)
        accel.load_graph(EDGES)
        assert len(accel.sessions) == 2

    def test_reconfigure_after_run_starts_fresh_query(self):
        """Regression: configure() after a completed run used to leave
        _last_result stale, so the next run() demanded a staged batch for
        an engine that never ran initial_compute()."""
        session = Accelerator().load_graph(EDGES)
        session.configure("sssp", source=0)
        session.run()
        session.configure("bfs", source=0)
        result = session.run()  # must be an initial evaluation, not a batch
        expected = reference.bfs(session.graph.snapshot(), 0)
        assert np.array_equal(result.states, expected)

    def test_reconfigure_resets_read_results(self):
        session = Accelerator().load_graph(EDGES)
        session.configure("sssp", source=0)
        session.run()
        session.read_results()
        session.configure("bfs", source=0)
        with pytest.raises(HostApiError):
            session.read_results()  # new query has not run yet
        session.run()
        states = session.read_results()
        assert np.array_equal(states, reference.bfs(session.graph.snapshot(), 0))

    def test_reconfigure_with_staged_batch_rejected(self):
        session = Accelerator().load_graph(EDGES)
        session.configure("sssp", source=0)
        session.run()
        session.push_updates(insertions=[(3, 0, 1.0)])
        with pytest.raises(HostApiError, match="staged"):
            session.configure("bfs", source=0)

    def test_empty_batch_is_legal(self):
        """An empty push_updates() batch runs and changes nothing."""
        session = Accelerator().load_graph(EDGES)
        session.configure("sssp", source=0)
        before = session.run().states.copy()
        session.push_updates()
        result = session.run()
        assert np.array_equal(result.states, before)
        assert session.graph.version == 1


class TestExpressLaneProtocol:
    def test_apply_update_before_configure_rejected(self):
        session = Accelerator().load_graph(EDGES)
        with pytest.raises(HostApiError, match="configure"):
            session.apply_update(0, 3, 1.0)

    def test_apply_update_before_initial_run_rejected(self):
        """Regression: the lane classifies against a *converged* state, so
        a configured-but-never-run session must refuse with a clear error
        instead of reading uninitialized state arrays."""
        session = Accelerator().load_graph(EDGES)
        session.configure("sssp", source=0)
        with pytest.raises(HostApiError, match="run\\(\\) the initial evaluation"):
            session.apply_update(0, 3, 1.0)
        # The refusal left the protocol intact: run() still works.
        session.run()
        assert list(session.read_results()) == [0.0, 2.0, 5.0, 6.0]

    def test_apply_update_cannot_overtake_staged_batch(self):
        session = Accelerator().load_graph(EDGES)
        session.configure("sssp", source=0)
        session.run()
        session.push_updates(insertions=[(3, 0, 1.0)])
        with pytest.raises(HostApiError, match="staged"):
            session.apply_update(0, 3, 1.0)

    def test_safe_update_applies_without_engine_run(self):
        session = Accelerator().load_graph(EDGES)
        session.configure("sssp", source=0)
        session.run()
        result = session.apply_update(1, 3, 0.5, "insert")
        assert result.safe and result.reason == "insert-local-improvement"
        assert result.new_state == (3, 2.5)
        assert list(session.read_results()) == [0.0, 2.0, 5.0, 2.5]
        assert session.express_stats()["safe_applied"] == 1
        assert session.express_stats()["engine_fallthroughs"] == 0
        # Express states match a full incremental run's answer.
        expected = reference.sssp(session.graph.snapshot(), 0)
        assert np.array_equal(session.read_results(), expected)

    def test_unsafe_update_falls_through_to_engine(self):
        session = Accelerator().load_graph(EDGES)
        session.configure("sssp", source=0)
        session.run()
        result = session.apply_update(0, 1, op="delete")
        assert not result.safe
        assert result.engine_result is not None
        assert session.last_result is result.engine_result
        assert session.express_stats()["engine_fallthroughs"] == 1
        expected = reference.sssp(session.graph.snapshot(), 0)
        assert np.array_equal(session.read_results(), expected)

    def test_reconfigure_drops_the_lane(self):
        session = Accelerator().load_graph(EDGES)
        session.configure("sssp", source=0)
        session.run()
        session.apply_update(1, 3, 0.5, "insert")
        session.configure("bfs", source=0)
        assert session.express_stats() == {
            "safe_applied": 0,
            "engine_fallthroughs": 0,
            "resyncs": 0,
        }
        with pytest.raises(HostApiError, match="run\\(\\) the initial evaluation"):
            session.apply_update(0, 3, 1.0)

    def test_express_updates_counted_as_transfers(self):
        config = AcceleratorConfig()
        session = Accelerator(config).load_graph(EDGES)
        session.configure("sssp", source=0)
        session.run()
        session.apply_update(1, 3, 0.5, "insert")
        session.apply_update(0, 3, 9.0, "insert")
        stats = session.transfer_stats()
        assert stats.update_records == 2 * config.stream_record_bytes


class TestTransferAccounting:
    def test_upload_counted(self):
        session = Accelerator().load_graph(EDGES)
        stats = session.transfer_stats()
        assert stats.graph_uploads > 0
        assert stats.update_records == 0

    def test_batch_and_readback_counted(self):
        config = AcceleratorConfig()
        session = Accelerator(config).load_graph(EDGES)
        session.configure("sssp")
        session.run()
        session.push_updates(insertions=[(3, 0, 1.0)])
        session.run()
        session.read_results()
        stats = session.transfer_stats()
        assert stats.update_records == config.stream_record_bytes
        assert stats.results_read == 4 * 8
        assert stats.total == (
            stats.graph_uploads + stats.update_records + stats.results_read
        )

    def test_empty_batch_transfers_nothing(self):
        session = Accelerator().load_graph(EDGES)
        session.configure("sssp")
        session.run()
        session.push_updates()
        session.run()
        assert session.transfer_stats().update_records == 0

    def test_deletion_only_batch_counted(self):
        """Deletion records cross the bus like insertions do."""
        config = AcceleratorConfig()
        session = Accelerator(config).load_graph(EDGES)
        session.configure("sssp")
        session.run()
        session.push_updates(deletions=[(0, 1), (2, 3)])
        session.run()
        stats = session.transfer_stats()
        assert stats.update_records == 2 * config.stream_record_bytes

    def test_transfer_stats_accumulate_across_reconfigure(self):
        session = Accelerator().load_graph(EDGES)
        session.configure("sssp")
        session.run()
        session.read_results()
        read_before = session.transfer_stats().results_read
        session.configure("bfs")
        session.run()
        session.read_results()
        assert session.transfer_stats().results_read == 2 * read_before


class TestCrossbarModel:
    def test_flits_scale_with_event_size(self):
        config = AcceleratorConfig(noc_flit_bytes=8)
        wide = CrossbarModel(config, event_bytes=14)
        narrow = CrossbarModel(config, event_bytes=8)
        assert wide.flits_per_event > narrow.flits_per_event

    def test_contention_factor_above_one(self):
        model = CrossbarModel(AcceleratorConfig())
        estimate = model.round_cycles(5000)
        assert estimate.contention_factor > 1.0

    def test_contention_shrinks_with_load(self):
        """Relative imbalance falls as the per-port load grows."""
        model = CrossbarModel(AcceleratorConfig())
        light = model.round_cycles(100).contention_factor
        heavy = model.round_cycles(1_000_000).contention_factor
        assert heavy < light

    def test_zero_events(self):
        estimate = CrossbarModel(AcceleratorConfig()).round_cycles(0)
        assert estimate.flits == 0
        assert estimate.contention_factor == 1.0

    def test_timing_model_contention_slower(self):
        from repro.core.metrics import RunMetrics

        metrics = RunMetrics()
        phase = metrics.phase("reevaluation")
        work = phase.new_round()
        work.queue_inserts = 100_000
        flat = AcceleratorTimingModel().run_time(metrics)
        contended = AcceleratorTimingModel(model_noc_contention=True).run_time(metrics)
        assert contended.total_cycles >= flat.total_cycles
