"""Integration tests for the experiment harness and report rendering.

Uses the smallest stand-in (WK) and tiny batches so the whole module runs
in tens of seconds while still exercising the real cross-system pipeline.
"""

import pytest

from repro.core.policies import DeletePolicy
from repro.experiments import harness, report
from repro.experiments import table1, table2, table4
from repro.experiments.harness import run_cell


@pytest.fixture(scope="module")
def sssp_cell():
    harness.clear_cache()
    return run_cell("WK", "sssp", policy=DeletePolicy.DAP, batch_size=24, seed=0)


class TestHarness:
    def test_all_systems_present(self, sssp_cell):
        assert set(sssp_cell.systems) == {"jetstream", "graphpulse", "kickstarter"}

    def test_states_agree(self, sssp_cell):
        assert sssp_cell.states_agree

    def test_speedup_directions(self, sssp_cell):
        """JetStream must beat cold start and the software framework."""
        assert sssp_cell.speedup("jetstream", "graphpulse") > 1.0
        assert sssp_cell.speedup("jetstream", "kickstarter") > 1.0

    def test_jetstream_less_work_than_cold(self, sssp_cell):
        jet = sssp_cell.systems["jetstream"]
        cold = sssp_cell.systems["graphpulse"]
        assert jet.vertex_accesses < cold.vertex_accesses
        assert jet.edge_accesses < cold.edge_accesses

    def test_memory_utilization_contrast(self, sssp_cell):
        """Fig. 11 direction: incremental rounds waste more of each line."""
        jet = sssp_cell.systems["jetstream"]
        cold = sssp_cell.systems["graphpulse"]
        assert jet.memory_utilization < cold.memory_utilization

    def test_cache_hit(self):
        first = run_cell("WK", "sssp", policy=DeletePolicy.DAP, batch_size=24, seed=0)
        second = run_cell("WK", "sssp", policy=DeletePolicy.DAP, batch_size=24, seed=0)
        assert first is second

    def test_accumulative_uses_graphbolt(self):
        cell = run_cell(
            "WK", "pagerank", batch_size=16, seed=0, systems=("jetstream", "software")
        )
        assert "graphbolt" in cell.systems
        assert cell.states_agree

    def test_deletion_only_cell(self):
        cell = run_cell(
            "WK",
            "sssp",
            batch_size=12,
            insertion_ratio=0.0,
            seed=0,
            systems=("jetstream", "software"),
        )
        assert cell.systems["jetstream"].vertices_reset >= 0
        assert cell.systems["kickstarter"].vertices_reset >= 0


class TestStaticTables:
    def test_table1_rows(self):
        rows = table1.run()
        assert len(rows) == 3
        text = table1.render(rows)
        assert "JetStream" in text and "DDR3" in text

    def test_table2_rows(self):
        rows = table2.run()
        text = table2.render(rows)
        assert "Twitter" in text
        assert len(rows) == 5

    def test_table4_render(self):
        text = table4.render(table4.run())
        assert "Queue" in text and "Total" in text


class TestReportHelpers:
    def test_render_table_alignment(self):
        text = report.render_table(["a", "bb"], [[1, 2.5], [10, 0.25]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 5  # title, header, rule, two rows

    def test_render_speedup(self):
        assert report.render_speedup(12.34) == "12.3x"
        assert report.render_speedup(float("nan")) == "-"
        assert report.render_speedup(float("inf")) == "-"

    def test_geomean(self):
        assert report.geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert report.geomean([]) != report.geomean([])  # NaN

    def test_fmt_nan(self):
        assert report._fmt(float("nan")) == "-"
