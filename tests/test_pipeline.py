"""Tests for the end-to-end streaming pipeline simulation (§2.1)."""

import numpy as np
import pytest

from repro.core.pipeline import (
    ArrivalTrace,
    PipelineReport,
    StreamingPipeline,
    engine_latency_function,
)


class TestArrivalTrace:
    def test_uniform_spacing(self):
        trace = ArrivalTrace.uniform(rate_per_s=10, duration_s=1.0)
        assert len(trace) == 10
        assert np.allclose(np.diff(trace.times), 0.1)

    def test_poisson_rate(self):
        trace = ArrivalTrace.poisson(rate_per_s=1000, duration_s=2.0, seed=1)
        assert len(trace) == pytest.approx(2000, rel=0.15)
        assert np.all(np.diff(trace.times) >= 0)

    def test_poisson_deterministic(self):
        a = ArrivalTrace.poisson(100, 1.0, seed=3)
        b = ArrivalTrace.poisson(100, 1.0, seed=3)
        assert np.array_equal(a.times, b.times)

    def test_bad_rate(self):
        with pytest.raises(ValueError):
            ArrivalTrace.poisson(0, 1.0)


class TestPipelineMechanics:
    def test_fast_engine_small_batches(self):
        """An engine much faster than the arrival gap processes updates
        nearly one at a time with tiny staleness."""
        trace = ArrivalTrace.uniform(rate_per_s=100, duration_s=1.0)
        pipeline = StreamingPipeline(evaluation_time_s=lambda n: 1e-6)
        report = pipeline.simulate(trace)
        assert report.updates_processed == 100
        assert report.mean_batch_size < 1.5
        assert report.mean_staleness_s < 0.01

    def test_slow_engine_forces_big_batches(self):
        """An engine slower than the arrival rate accumulates arrivals
        while busy — batches grow and staleness compounds."""
        trace = ArrivalTrace.uniform(rate_per_s=100, duration_s=1.0)
        pipeline = StreamingPipeline(evaluation_time_s=lambda n: 0.1)
        report = pipeline.simulate(trace)
        assert report.mean_batch_size > 5
        assert report.mean_staleness_s > 0.05

    def test_min_batch_gate(self):
        trace = ArrivalTrace.uniform(rate_per_s=10, duration_s=1.0)
        pipeline = StreamingPipeline(evaluation_time_s=lambda n: 1e-6, min_batch=5)
        report = pipeline.simulate(trace)
        assert all(b.size >= 5 for b in report.batches[:-1])

    def test_max_batch_bound(self):
        trace = ArrivalTrace.uniform(rate_per_s=1000, duration_s=0.1)
        pipeline = StreamingPipeline(
            evaluation_time_s=lambda n: 0.05, max_batch=10
        )
        report = pipeline.simulate(trace)
        assert all(b.size <= 10 for b in report.batches)

    def test_all_updates_processed_once(self):
        trace = ArrivalTrace.poisson(rate_per_s=500, duration_s=0.5, seed=5)
        pipeline = StreamingPipeline(evaluation_time_s=lambda n: 0.001)
        report = pipeline.simulate(trace)
        assert report.updates_processed == len(trace)

    def test_busy_fraction_bounded(self):
        trace = ArrivalTrace.uniform(rate_per_s=100, duration_s=1.0)
        pipeline = StreamingPipeline(evaluation_time_s=lambda n: 0.002)
        report = pipeline.simulate(trace)
        assert 0.0 < report.busy_fraction <= 1.0

    def test_empty_report_properties(self):
        report = PipelineReport()
        assert report.mean_staleness_s == 0.0
        assert report.p99_staleness_s == 0.0
        assert report.busy_fraction == 0.0

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            StreamingPipeline(lambda n: 0.1, min_batch=0)
        with pytest.raises(ValueError):
            StreamingPipeline(lambda n: 0.1, min_batch=5, max_batch=2)


class TestRealEngineLatency:
    def test_jetstream_beats_cold_start_on_staleness(self):
        """The Fig. 13 conclusion, end to end: at the same arrival rate,
        the incremental engine serves far fresher results than cold-start
        recomputation."""
        from repro import DynamicGraph, GraphPulseEngine, JetStreamEngine, make_algorithm
        from repro.baselines import GraphPulseColdStart
        from repro.graph import generators

        edges = generators.ensure_reachable_core(
            generators.rmat(1024, 6144, seed=31), 1024, seed=32
        )

        def jet_factory():
            return JetStreamEngine(
                DynamicGraph.from_edges(edges, 1024),
                make_algorithm("sssp", source=0),
            )

        def cold_factory():
            return GraphPulseColdStart(
                DynamicGraph.from_edges(edges, 1024),
                make_algorithm("sssp", source=0),
            )

        jet_latency = engine_latency_function(jet_factory, probe_sizes=(4, 32, 128))
        cold_latency = engine_latency_function(cold_factory, probe_sizes=(4, 32, 128))
        # Arrival rate chosen so the cold engine saturates: its evaluation
        # time is paid in full regardless of batch size.
        rate = 4.0 / max(1e-9, cold_latency(4))
        trace = ArrivalTrace.poisson(rate_per_s=rate, duration_s=200 / rate, seed=33)
        jet_report = StreamingPipeline(jet_latency).simulate(trace)
        cold_report = StreamingPipeline(cold_latency).simulate(trace)
        assert jet_report.mean_staleness_s < cold_report.mean_staleness_s
        assert jet_report.mean_batch_size <= cold_report.mean_batch_size
