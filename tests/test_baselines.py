"""Tests for the software baselines (KickStarter, GraphBolt, cold start)."""

import numpy as np
import pytest

from repro import reference
from repro.algorithms import make_algorithm
from repro.baselines import GraphBolt, GraphPulseColdStart, KickStarter
from repro.graph.dynamic import DynamicGraph
from repro.streams import Edge, StreamGenerator, UpdateBatch

from conftest import assert_states_match, make_graph_for, random_digraph


class TestKickStarterCorrectness:
    @pytest.mark.parametrize("name", ["sssp", "sswp", "bfs", "cc"])
    @pytest.mark.parametrize("seed", [1, 2])
    def test_matches_reference_over_stream(self, name, seed):
        algorithm = make_algorithm(name, source=0)
        graph = make_graph_for(algorithm, n=50, m=200, seed=seed)
        engine = KickStarter(graph, algorithm)
        initial = engine.initial_compute()
        assert_states_match(
            algorithm,
            initial.states,
            reference.compute_reference(algorithm, graph.snapshot()),
        )
        stream = StreamGenerator(graph, seed=seed + 5, insertion_ratio=0.5)
        for i in range(4):
            result = engine.apply_batch(stream.next_batch(14))
            expected = reference.compute_reference(algorithm, graph.snapshot())
            assert_states_match(algorithm, result.states, expected, f"batch {i}")

    def test_cyclic_self_support_regression(self):
        """The SSWP case where two stale vertices once re-validated each
        other around a cycle (requires the level gate in re-approximation).
        """
        from repro.graph import generators

        edges = generators.erdos_renyi(60, 240, seed=1)
        graph = DynamicGraph.from_edges(edges, 60)
        algorithm = make_algorithm("sswp", source=0)
        engine = KickStarter(graph, algorithm)
        engine.initial_compute()
        stream = StreamGenerator(graph, seed=12, insertion_ratio=0.5)
        for _ in range(2):
            result = engine.apply_batch(stream.next_batch(12))
        expected = reference.compute_reference(algorithm, graph.snapshot())
        assert_states_match(algorithm, result.states, expected)

    def test_rejects_accumulative(self):
        with pytest.raises(ValueError):
            KickStarter(random_digraph(), make_algorithm("pagerank"))

    def test_rejects_asymmetric_for_cc(self):
        with pytest.raises(ValueError):
            KickStarter(random_digraph(), make_algorithm("cc"))

    def test_apply_before_initial_rejected(self):
        engine = KickStarter(random_digraph(), make_algorithm("sssp", source=0))
        with pytest.raises(RuntimeError):
            engine.apply_batch(UpdateBatch())


class TestKickStarterBehaviour:
    def test_resets_counted(self):
        graph = DynamicGraph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)], 4)
        engine = KickStarter(graph, make_algorithm("sssp", source=0))
        engine.initial_compute()
        result = engine.apply_batch(UpdateBatch(deletions=[Edge(0, 1)]))
        assert result.vertices_reset == 3  # 1, 2, 3 all depended on 0->1

    def test_untouched_vertices_not_reset(self):
        graph = DynamicGraph.from_edges(
            [(0, 1, 1.0), (0, 2, 1.0), (2, 3, 1.0)], 4
        )
        engine = KickStarter(graph, make_algorithm("sssp", source=0))
        engine.initial_compute()
        result = engine.apply_batch(UpdateBatch(deletions=[Edge(0, 1)]))
        assert 2 not in result.trimmed
        assert 3 not in result.trimmed

    def test_work_counters_populated(self):
        algorithm = make_algorithm("sssp", source=0)
        graph = make_graph_for(algorithm, seed=9)
        engine = KickStarter(graph, algorithm)
        engine.initial_compute()
        stream = StreamGenerator(graph, seed=10)
        result = engine.apply_batch(stream.next_batch(12))
        assert result.work.iterations > 0
        assert result.work.vertex_reads_random > 0

    def test_vertex_growth(self):
        graph = DynamicGraph.from_edges([(0, 1, 1.0)], 2)
        engine = KickStarter(graph, make_algorithm("sssp", source=0))
        engine.initial_compute()
        result = engine.apply_batch(UpdateBatch(insertions=[Edge(1, 4, 2.0)]))
        assert len(result.states) == 5
        assert result.states[4] == 3.0


class TestGraphBoltCorrectness:
    @pytest.mark.parametrize("name", ["pagerank", "adsorption"])
    @pytest.mark.parametrize("seed", [1, 2])
    def test_matches_reference_over_stream(self, name, seed):
        algorithm = make_algorithm(name)
        graph = random_digraph(n=50, m=200, seed=seed)
        engine = GraphBolt(graph, algorithm)
        initial = engine.initial_compute()
        assert_states_match(
            algorithm,
            initial.states,
            reference.compute_reference(algorithm, graph.snapshot()),
        )
        stream = StreamGenerator(graph, seed=seed + 7, insertion_ratio=0.5)
        for i in range(4):
            result = engine.apply_batch(stream.next_batch(14))
            expected = reference.compute_reference(algorithm, graph.snapshot())
            assert_states_match(algorithm, result.states, expected, f"batch {i}")

    def test_rejects_selective(self):
        with pytest.raises(ValueError):
            GraphBolt(random_digraph(), make_algorithm("sssp"))

    def test_vertex_growth_seeded(self):
        graph = DynamicGraph.from_edges([(0, 1, 1.0)], 2)
        algorithm = make_algorithm("pagerank")
        engine = GraphBolt(graph, algorithm)
        engine.initial_compute()
        result = engine.apply_batch(UpdateBatch(insertions=[Edge(1, 3, 1.0)]))
        expected = reference.pagerank(graph.snapshot())
        assert_states_match(algorithm, result.states, expected)

    def test_history_bookkeeping_charged(self):
        graph = random_digraph(n=40, m=160, seed=3)
        engine = GraphBolt(graph, make_algorithm("pagerank"))
        engine.initial_compute()
        stream = StreamGenerator(graph, seed=4)
        result = engine.apply_batch(stream.next_batch(10))
        assert result.work.bookkeeping_bytes > 0
        assert result.work.iterations > 0


class TestGraphPulseColdStart:
    def test_recompute_matches_reference(self):
        algorithm = make_algorithm("sssp", source=0)
        graph = make_graph_for(algorithm, seed=5)
        engine = GraphPulseColdStart(graph, algorithm)
        engine.initial_compute()
        stream = StreamGenerator(graph, seed=6)
        for _ in range(2):
            result = engine.apply_batch(stream.next_batch(10))
            expected = reference.compute_reference(algorithm, graph.snapshot())
            assert_states_match(algorithm, result.states, expected)

    def test_cost_independent_of_batch_size(self):
        """Cold start does full work regardless of how small the batch is
        — the inefficiency JetStream exists to remove."""
        algorithm = make_algorithm("sssp", source=0)
        graph = make_graph_for(algorithm, n=80, m=320, seed=7)
        engine = GraphPulseColdStart(graph, algorithm)
        engine.initial_compute()
        stream = StreamGenerator(graph, seed=8)
        small = engine.apply_batch(stream.next_batch(2))
        large = engine.apply_batch(stream.next_batch(40))
        ratio = (
            small.metrics.events_processed / large.metrics.events_processed
        )
        assert 0.5 < ratio < 2.0

    def test_history(self):
        algorithm = make_algorithm("sssp", source=0)
        graph = make_graph_for(algorithm, seed=9)
        engine = GraphPulseColdStart(graph, algorithm)
        engine.initial_compute()
        stream = StreamGenerator(graph, seed=10)
        engine.apply_batch(stream.next_batch(5))
        assert len(engine.history) == 2
        assert engine.history[-1].graph_version == graph.version


class TestCrossSystemAgreement:
    @pytest.mark.parametrize("name", ["sssp", "cc"])
    def test_jetstream_and_kickstarter_agree(self, name):
        from repro.core.streaming import JetStreamEngine

        algorithm = make_algorithm(name, source=0)
        graph_a = make_graph_for(algorithm, n=50, m=200, seed=11)
        graph_b = make_graph_for(algorithm, n=50, m=200, seed=11)
        jet = JetStreamEngine(graph_a, make_algorithm(name, source=0))
        kick = KickStarter(graph_b, make_algorithm(name, source=0))
        jet.initial_compute()
        kick.initial_compute()
        stream_a = StreamGenerator(graph_a, seed=12, insertion_ratio=0.5)
        stream_b = StreamGenerator(graph_b, seed=12, insertion_ratio=0.5)
        for _ in range(3):
            ra = jet.apply_batch(stream_a.next_batch(10))
            rb = kick.apply_batch(stream_b.next_batch(10))
            assert np.array_equal(ra.states, rb.states)
