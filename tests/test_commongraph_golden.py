"""CommonGraph conversion goldens + multi-version evaluation tests.

Pins the observable behaviour of the ``delete_policy=commongraph``
tentpole the same way ``tests/test_stream_golden.py`` pins the seed
pipeline — in a separate golden file so the pre-existing pinned records
stay untouched:

1. **Golden equality** — each (selective algorithm × deletion-heavy
   stream) scenario, replayed with the conversion, matches
   ``tests/data/commongraph_goldens.json`` field for field: states hash,
   per-phase round work vectors, queue counters. The conversion's
   signature shape — a ``common-convergence`` phase followed by an
   ``addition-pass`` phase, zero ``vertices_reset`` everywhere — is part
   of the record.
2. **Engine parity** — scalar, vectorized, and sharded substrates
   produce bit-identical records.
3. **Oracle parity** — final states equal the DAP recovery path and the
   cold-start reference.
4. **Multi-version evaluation** — ``Session.run_at_versions`` over a
   recorded stream returns, for every retained version, exactly the
   states a cold run on that version's reconstructed graph returns;
   accumulative algorithms take the independent fallback.

Regenerate (only on purpose, from a known-good tree):

    PYTHONPATH=src python tests/test_commongraph_golden.py --update
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple

import numpy as np
import pytest

from repro.algorithms import make_algorithm
from repro.core.policies import DeletePolicy
from repro.core.streaming import JetStreamEngine
from repro.graph import generators
from repro.graph.dynamic import DynamicGraph
from repro.host import Accelerator
from repro.reference import compute_reference
from repro.streams import StreamGenerator, UpdateBatch

from test_stream_golden import _result_record

GOLDEN_PATH = Path(__file__).parent / "data" / "commongraph_goldens.json"

#: Selective algorithms only — the conversion is monotone-only by design.
ALGORITHMS = ["sssp", "bfs", "cc", "sswp"]
ENGINES = ["scalar", "vectorized", "sharded"]

NUM_VERTICES = 50
NUM_EDGES = 200
GRAPH_SEED = 13
STREAM_SEED = 17
NUM_BATCHES = 3
BATCH_SIZE = 12
#: Deletion-heavy: the conversion path, not the monotone addition path,
#: carries every batch.
INSERTION_RATIO = 0.25


def _build_graph(algorithm) -> DynamicGraph:
    edges = generators.erdos_renyi(NUM_VERTICES, NUM_EDGES, seed=GRAPH_SEED)
    if algorithm.needs_symmetric:
        graph = DynamicGraph(NUM_VERTICES, symmetric=True)
        seen = set()
        for u, v, w in edges:
            key = (min(u, v), max(u, v))
            if key in seen:
                continue
            seen.add(key)
            graph.add_edge(u, v, w, _count_version=False)
        return graph
    return DynamicGraph.from_edges(edges, NUM_VERTICES)


def _stream_batches(algorithm) -> List[UpdateBatch]:
    graph = _build_graph(algorithm)
    generator = StreamGenerator(
        graph, seed=STREAM_SEED, insertion_ratio=INSERTION_RATIO
    )
    return list(generator.stream(BATCH_SIZE, NUM_BATCHES))


def run_scenario(
    name: str, engine: str = "auto", policy: DeletePolicy = DeletePolicy.COMMONGRAPH
) -> Tuple[dict, JetStreamEngine]:
    algorithm = make_algorithm(name, source=0)
    graph = _build_graph(algorithm)
    kwargs = {"engine": engine}
    if engine == "sharded":
        kwargs["num_engines"] = 4
    stream_engine = JetStreamEngine(graph, algorithm, policy=policy, **kwargs)
    runs = [stream_engine.initial_compute()]
    for batch in _stream_batches(algorithm):
        runs.append(stream_engine.apply_batch(batch))
    record = {
        "scenario": name,
        "runs": [_result_record(r) for r in runs],
    }
    return record, stream_engine


def _assert_records_equal(actual: dict, expected: dict, context: str) -> None:
    assert len(actual["runs"]) == len(expected["runs"]), context
    for i, (a, e) in enumerate(zip(actual["runs"], expected["runs"])):
        ctx = f"{context} run {i}"
        assert a["version"] == e["version"], ctx
        assert a["impacted"] == e["impacted"], ctx
        assert a["queue"] == e["queue"], f"{ctx}: queue stats drifted"
        assert len(a["phases"]) == len(e["phases"]), ctx
        for ap, ep in zip(a["phases"], e["phases"]):
            pctx = f"{ctx} phase {ep['name']}"
            assert ap["name"] == ep["name"], pctx
            assert ap["request_events"] == ep["request_events"], pctx
            assert ap["vertices_reset"] == ep["vertices_reset"], pctx
            assert ap["rounds"] == ep["rounds"], f"{pctx}: work drifted"
        assert a["states_sha"] == e["states_sha"], f"{ctx}: states drifted"


# ----------------------------------------------------------------------
# Golden + parity tests
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def goldens() -> Dict[str, dict]:
    if not GOLDEN_PATH.exists():
        pytest.skip(f"golden file missing: {GOLDEN_PATH}")
    data = json.loads(GOLDEN_PATH.read_text())
    return {rec["scenario"]: rec for rec in data["scenarios"]}


@pytest.mark.parametrize("name", ALGORITHMS)
def test_matches_golden(goldens, name):
    record, _ = run_scenario(name)
    _assert_records_equal(record, goldens[name], name)


@pytest.mark.parametrize("name", ALGORITHMS)
def test_conversion_never_resets(name):
    record, _ = run_scenario(name)
    for i, run in enumerate(record["runs"][1:], start=1):
        for phase in run["phases"]:
            assert phase["vertices_reset"] == 0, (
                f"{name} run {i} phase {phase['name']}: the conversion "
                "must never reset a vertex"
            )


@pytest.mark.parametrize("engine", ["vectorized", "sharded"])
@pytest.mark.parametrize("name", ALGORITHMS)
def test_engine_substrates_bit_identical(name, engine):
    scalar, _ = run_scenario(name, engine="scalar")
    other, _ = run_scenario(name, engine=engine)
    # Work vectors legitimately differ across substrates (batched rounds);
    # versions, final states, and reset-freedom must not.
    for i, (a, e) in enumerate(zip(other["runs"], scalar["runs"])):
        assert a["version"] == e["version"], f"{name}/{engine} run {i}"
        assert a["states_sha"] == e["states_sha"], (
            f"{name}/{engine} run {i}: states diverged from scalar"
        )


@pytest.mark.parametrize("name", ALGORITHMS)
def test_matches_dap_oracle_and_reference(name):
    cg, cg_engine = run_scenario(name)
    dap, dap_engine = run_scenario(name, policy=DeletePolicy.DAP)
    assert np.array_equal(cg_engine.states, dap_engine.states), (
        f"{name}: conversion states differ from the DAP recovery oracle"
    )
    csr = cg_engine.graph.snapshot()
    expected = compute_reference(cg_engine.algorithm, csr)
    for i in range(csr.num_vertices):
        assert cg_engine.algorithm.values_close(
            float(cg_engine.states[i]), float(expected[i])
        ), f"{name}: vertex {i} diverges from cold-start reference"


# ----------------------------------------------------------------------
# Multi-version evaluation (Session.run_at_versions)
# ----------------------------------------------------------------------
def _session_with_history(name: str, keep_versions=None):
    algorithm = make_algorithm(name, source=0)
    graph = _build_graph(algorithm)
    edges = [(u, v, w) for u, v, w in graph.edges()]
    if algorithm.needs_symmetric:
        edges = [(u, v, w) for u, v, w in edges if u <= v]
    accel = Accelerator()
    session = accel.load_graph(
        edges,
        num_vertices=graph.num_vertices,
        symmetric=algorithm.needs_symmetric,
    )
    session.configure(name, source=0)
    session.enable_versioning(keep_versions=keep_versions)
    session.run()
    generator = StreamGenerator(
        session.graph, seed=STREAM_SEED, insertion_ratio=INSERTION_RATIO
    )
    for _ in range(NUM_BATCHES):
        batch = generator.next_batch(BATCH_SIZE)
        session.push_updates(
            insertions=[(e.u, e.v, e.w) for e in batch.insertions],
            deletions=[(e.u, e.v) for e in batch.deletions],
        )
        session.run()
    return accel, session, algorithm


@pytest.mark.parametrize("name", ["sssp", "cc"])
def test_run_at_versions_matches_per_version_reference(name):
    accel, session, algorithm = _session_with_history(name)
    try:
        result = session.run_at_versions(0)
        assert result.shared, "selective algorithms share the common prefix"
        assert result.versions == session.version_store.versions()
        for version in result.versions:
            csr = session.version_store.reconstruct(version)
            expected = compute_reference(algorithm, csr)
            states = result.states[version]
            assert states.shape[0] == csr.num_vertices
            for i in range(csr.num_vertices):
                assert algorithm.values_close(
                    float(states[i]), float(expected[i])
                ), f"{name} v{version}: vertex {i}"
    finally:
        session.close()
        accel.close()


def test_run_at_versions_accumulative_fallback():
    accel, session, algorithm = _session_with_history("pagerank")
    try:
        result = session.run_at_versions(0)
        assert not result.shared, "pagerank cannot share a monotone prefix"
        for version in result.versions:
            csr = session.version_store.reconstruct(version)
            expected = compute_reference(algorithm, csr)
            states = result.states[version]
            for i in range(csr.num_vertices):
                assert algorithm.values_close(
                    float(states[i]), float(expected[i])
                ), f"pagerank v{version}: vertex {i}"
    finally:
        session.close()
        accel.close()


def test_run_at_versions_shares_work():
    """The point of the shared prefix: total events across N versions is
    well below N independent cold runs."""
    accel, session, algorithm = _session_with_history("sssp")
    try:
        result = session.run_at_versions(0)
        cold_total = 0
        for version in result.versions:
            csr = session.version_store.reconstruct(version)
            cold = JetStreamEngine(
                DynamicGraph.from_edges(
                    [(u, v, w) for u, v, w in csr.edges()], csr.num_vertices
                ),
                make_algorithm("sssp", source=0),
            )
            try:
                cold_total += cold.initial_compute().metrics.events_processed
            finally:
                cold.close()
        assert result.total_events < cold_total, (
            f"shared evaluation ({result.total_events} events) should beat "
            f"{len(result.versions)} cold runs ({cold_total} events)"
        )
    finally:
        session.close()
        accel.close()


def test_run_at_versions_respects_retention():
    accel, session, _ = _session_with_history("sssp", keep_versions=2)
    try:
        result = session.run_at_versions(0)
        assert result.versions == session.version_store.versions()
        assert len(result.versions) == 2
    finally:
        session.close()
        accel.close()


# ----------------------------------------------------------------------
# Regeneration entry point
# ----------------------------------------------------------------------
def _regenerate() -> None:
    records = []
    for name in ALGORITHMS:
        record, _ = run_scenario(name)
        records.append(record)
        print(f"captured {name}: {len(record['runs'])} runs")
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps({"scenarios": records}, indent=1) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    import sys

    if "--update" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
