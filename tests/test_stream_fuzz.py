"""Property-based stream fuzzing for the sharded incremental engine.

The invariant under test: **incremental evaluation on the sharded parallel
backend equals a cold-start reference computation** on the final graph —
``incremental(sharded) == cold_start(reference.py)`` within each
algorithm's tolerance — for seeded random RMAT graphs driven by random
batched insert/delete streams. Every scenario is reproducible from its
``(algorithm, seed)`` pair; on failure the test bisects the batch list
and prints the minimal failing stream prefix, so a regression can be
replayed directly.
"""

from __future__ import annotations

from typing import List, Optional

import pytest

from repro.algorithms import make_algorithm
from repro.core.policies import DeletePolicy
from repro.core.streaming import JetStreamEngine
from repro.graph import generators
from repro.graph.dynamic import DynamicGraph
from repro.reference import compute_reference
from repro.streams import StreamGenerator, UpdateBatch

#: 3 algorithms × 9 seeds = 27 seeded scenarios (the issue floor is 25).
FUZZ_ALGORITHMS = ["pagerank", "sssp", "cc"]
SCENARIO_SEEDS = list(range(9))

NUM_VERTICES = 48
NUM_EDGES = 150
NUM_BATCHES = 4
BATCH_SIZE = 10
NUM_ENGINES = 8


def _build_graph(algorithm, seed: int) -> DynamicGraph:
    """Deterministic RMAT graph honouring the algorithm's symmetry need."""
    edges = generators.rmat(NUM_VERTICES, NUM_EDGES, seed=seed, weighted=True)
    if algorithm.needs_symmetric:
        graph = DynamicGraph(NUM_VERTICES, symmetric=True)
        seen = set()
        for u, v, w in edges:
            key = (min(u, v), max(u, v))
            if key in seen:
                continue
            seen.add(key)
            graph.add_edge(u, v, w, _count_version=False)
        return graph
    return DynamicGraph.from_edges(edges, NUM_VERTICES)


def _make_batches(name: str, seed: int) -> List[UpdateBatch]:
    """The scenario's update stream, captured up front so prefixes replay."""
    algorithm = make_algorithm(name, source=0)
    graph = _build_graph(algorithm, seed)
    generator = StreamGenerator(graph, seed=seed + 1000)
    return list(generator.stream(BATCH_SIZE, NUM_BATCHES))


def _mismatches(algorithm, states, csr) -> List[int]:
    expected = compute_reference(algorithm, csr)
    return [
        i
        for i in range(len(expected))
        if not algorithm.values_close(float(states[i]), float(expected[i]))
    ]


def _replay(
    name: str,
    seed: int,
    batches: List[UpdateBatch],
    backend: str = "thread",
) -> Optional[int]:
    """Run the scenario prefix incrementally on the sharded backend.

    Returns the smallest prefix length after which the incremental states
    diverge from the cold-start reference (0 = the initial evaluation
    already diverges), or ``None`` when the whole prefix holds.
    """
    algorithm = make_algorithm(name, source=0)
    graph = _build_graph(algorithm, seed)
    engine = JetStreamEngine(
        graph,
        algorithm,
        engine="sharded",
        num_engines=NUM_ENGINES,
        backend=backend,
    )
    try:
        engine.initial_compute()
        if _mismatches(algorithm, engine.query_result(), graph.snapshot()):
            return 0
        for index, batch in enumerate(batches):
            engine.apply_batch(batch)
            if _mismatches(algorithm, engine.query_result(), graph.snapshot()):
                return index + 1
    finally:
        engine.close()
    return None


def _minimal_failing_prefix(
    name: str,
    seed: int,
    batches: List[UpdateBatch],
    failing_len: int,
    backend: str = "thread",
) -> int:
    """Bisect the batch list down to the shortest prefix that still fails."""
    if failing_len == 0:
        return 0
    lo, hi = 1, failing_len
    while lo < hi:
        mid = (lo + hi) // 2
        if _replay(name, seed, batches[:mid], backend=backend) is not None:
            hi = mid
        else:
            lo = mid + 1
    return lo


def _format_prefix(batches: List[UpdateBatch]) -> str:
    lines = []
    for index, batch in enumerate(batches):
        ins = [(e.u, e.v, round(e.w, 3)) for e in batch.insertions]
        dels = [(e.u, e.v) for e in batch.deletions]
        lines.append(f"  batch {index}: insert {ins} delete {dels}")
    return "\n".join(lines) if lines else "  (initial evaluation, no batches)"


@pytest.mark.parametrize("seed", SCENARIO_SEEDS)
@pytest.mark.parametrize("name", FUZZ_ALGORITHMS)
def test_incremental_sharded_matches_cold_start(name, seed):
    batches = _make_batches(name, seed)
    failing = _replay(name, seed, batches)
    if failing is None:
        return
    minimal = _minimal_failing_prefix(name, seed, batches, failing)
    pytest.fail(
        f"scenario {name}/seed={seed}: incremental(sharded, "
        f"{NUM_ENGINES} engines) diverged from cold_start(reference) after "
        f"{minimal} batch(es). Minimal failing stream prefix "
        f"(RMAT n={NUM_VERTICES} m={NUM_EDGES} seed={seed}, stream seed="
        f"{seed + 1000}):\n" + _format_prefix(batches[:minimal])
    )


#: Process-backend subset: the full matrix would re-pay worker spawns for
#: little extra coverage — backends are bit-identical by the parity suite,
#: so three seeds per algorithm exercise the shm transport end to end.
PROCESS_SEEDS = list(range(3))


@pytest.mark.parametrize("seed", PROCESS_SEEDS)
@pytest.mark.parametrize("name", FUZZ_ALGORITHMS)
def test_incremental_process_backend_matches_cold_start(name, seed):
    batches = _make_batches(name, seed)
    failing = _replay(name, seed, batches, backend="process")
    if failing is None:
        return
    minimal = _minimal_failing_prefix(
        name, seed, batches, failing, backend="process"
    )
    pytest.fail(
        f"scenario {name}/seed={seed}: incremental(sharded, "
        f"{NUM_ENGINES} engines, process backend) diverged from "
        f"cold_start(reference) after {minimal} batch(es). Minimal failing "
        f"stream prefix (RMAT n={NUM_VERTICES} m={NUM_EDGES} seed={seed}, "
        f"stream seed={seed + 1000}):\n" + _format_prefix(batches[:minimal])
    )


def test_scenario_count_meets_floor():
    """The issue's acceptance bar: at least 25 seeded stream scenarios."""
    assert len(FUZZ_ALGORITHMS) * len(SCENARIO_SEEDS) >= 25


# ----------------------------------------------------------------------
# Deletion-heavy policy matrix
# ----------------------------------------------------------------------
# The deletion-policy invariant: every policy — VAP's coalesced resets,
# DAP's dependency-aware trimming, and the CommonGraph
# deletion-to-addition conversion — must land on the same cold-start
# reference states, on every engine substrate. Streams here are
# deletion-heavy (20% insertions) so the recovery machinery, not the
# monotone addition path, carries each batch.

DELETION_POLICIES = [DeletePolicy.VAP, DeletePolicy.DAP, DeletePolicy.COMMONGRAPH]
DELETION_ENGINES = ["scalar", "vectorized", "sharded"]
DELETION_ALGORITHMS = ["sssp", "cc"]
DELETION_SEEDS = list(range(3))
DELETION_INSERTION_RATIO = 0.2


def _make_deletion_batches(name: str, seed: int) -> List[UpdateBatch]:
    algorithm = make_algorithm(name, source=0)
    graph = _build_graph(algorithm, seed)
    generator = StreamGenerator(
        graph, seed=seed + 2000, insertion_ratio=DELETION_INSERTION_RATIO
    )
    return list(generator.stream(BATCH_SIZE, NUM_BATCHES))


def _replay_policy(
    name: str,
    seed: int,
    batches: List[UpdateBatch],
    policy: DeletePolicy,
    engine: str,
) -> Optional[int]:
    algorithm = make_algorithm(name, source=0)
    graph = _build_graph(algorithm, seed)
    kwargs = {"engine": engine}
    if engine == "sharded":
        kwargs["num_engines"] = NUM_ENGINES
    stream_engine = JetStreamEngine(graph, algorithm, policy=policy, **kwargs)
    try:
        stream_engine.initial_compute()
        if _mismatches(algorithm, stream_engine.query_result(), graph.snapshot()):
            return 0
        for index, batch in enumerate(batches):
            result = stream_engine.apply_batch(batch)
            if policy is DeletePolicy.COMMONGRAPH and batch.deletions:
                assert result.vertices_reset == 0, (
                    f"commongraph reset {result.vertices_reset} vertices "
                    f"on batch {index} — the conversion must never reset"
                )
            if _mismatches(
                algorithm, stream_engine.query_result(), graph.snapshot()
            ):
                return index + 1
    finally:
        stream_engine.close()
    return None


@pytest.mark.parametrize("seed", DELETION_SEEDS)
@pytest.mark.parametrize("engine", DELETION_ENGINES)
@pytest.mark.parametrize("policy", DELETION_POLICIES, ids=lambda p: p.value)
@pytest.mark.parametrize("name", DELETION_ALGORITHMS)
def test_deletion_policies_match_cold_start(name, policy, engine, seed):
    batches = _make_deletion_batches(name, seed)
    failing = _replay_policy(name, seed, batches, policy, engine)
    if failing is None:
        return
    pytest.fail(
        f"scenario {name}/{policy.value}/{engine}/seed={seed}: incremental "
        f"states diverged from cold_start(reference) after {failing} "
        f"batch(es) of a deletion-heavy stream "
        f"(insertion_ratio={DELETION_INSERTION_RATIO}):\n"
        + _format_prefix(batches[:failing])
    )


@pytest.mark.parametrize("seed", DELETION_SEEDS)
def test_commongraph_falls_through_for_accumulative(seed):
    """PageRank can't ride the conversion (non-monotonic): requesting
    commongraph must fall through to a recovery policy and still match
    the cold-start reference."""
    batches = _make_deletion_batches("pagerank", seed)
    algorithm = make_algorithm("pagerank", source=0)
    graph = _build_graph(algorithm, seed)
    engine = JetStreamEngine(
        graph, algorithm, policy=DeletePolicy.COMMONGRAPH
    )
    try:
        assert engine.requested_policy is DeletePolicy.COMMONGRAPH
        assert engine.policy is not DeletePolicy.COMMONGRAPH
        engine.initial_compute()
        for batch in batches:
            engine.apply_batch(batch)
        assert not _mismatches(
            algorithm, engine.query_result(), graph.snapshot()
        )
    finally:
        engine.close()
