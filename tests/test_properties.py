"""Property-based tests (hypothesis) on the core invariants.

* streaming == static recomputation for random graphs and random batches,
  across all policies and algorithm classes;
* the recoverable-approximation invariant of §3.2: after the recovery
  phase, every vertex state is *no more progressed* than its eventual
  converged value;
* queue coalescing == a sequential fold of Reduce over the inserted
  payloads;
* CSR construction is a faithful multiset of the input edges.
"""

import math

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import reference
from repro.algorithms import make_algorithm
from repro.core.config import AcceleratorConfig
from repro.core.engine import EngineCore
from repro.core.events import Event
from repro.core.metrics import PhaseStats, RoundWork
from repro.core.policies import DeletePolicy
from repro.core.queue import CoalescingQueue
from repro.core.streaming import JetStreamEngine
from repro.graph.csr import CSRGraph
from repro.graph.dynamic import DynamicGraph
from repro.streams import Edge, UpdateBatch

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graph_and_batch(draw, symmetric=False, max_n=14):
    """A random digraph plus a consistent update batch for it."""
    n = draw(st.integers(min_value=3, max_value=max_n))
    possible = [(u, v) for u in range(n) for v in range(n) if u != v]
    if symmetric:
        possible = [(u, v) for u, v in possible if u < v]
    edge_keys = draw(
        st.lists(st.sampled_from(possible), unique=True, min_size=2, max_size=24)
    )
    weights = draw(
        st.lists(
            st.integers(min_value=1, max_value=9),
            min_size=len(edge_keys),
            max_size=len(edge_keys),
        )
    )
    edges = [(u, v, float(w)) for (u, v), w in zip(edge_keys, weights)]

    num_deletes = draw(st.integers(min_value=0, max_value=min(4, len(edges))))
    delete_idx = draw(
        st.lists(
            st.integers(min_value=0, max_value=len(edges) - 1),
            unique=True,
            min_size=num_deletes,
            max_size=num_deletes,
        )
    )
    deletions = [Edge(edges[i][0], edges[i][1], edges[i][2]) for i in delete_idx]

    free = [p for p in possible if p not in set(edge_keys)]
    num_inserts = draw(st.integers(min_value=0, max_value=min(4, len(free))))
    insert_keys = draw(
        st.lists(st.sampled_from(free), unique=True, min_size=num_inserts, max_size=num_inserts)
    ) if free else []
    insert_weights = draw(
        st.lists(
            st.integers(min_value=1, max_value=9),
            min_size=len(insert_keys),
            max_size=len(insert_keys),
        )
    )
    insertions = [Edge(u, v, float(w)) for (u, v), w in zip(insert_keys, insert_weights)]
    return n, edges, UpdateBatch(insertions=insertions, deletions=deletions)


def build_graph(n, edges, symmetric):
    graph = DynamicGraph(n, symmetric=symmetric)
    for u, v, w in edges:
        graph.add_edge(u, v, w, _count_version=False)
    return graph


class TestStreamingEqualsStatic:
    @SETTINGS
    @given(data=graph_and_batch(), policy=st.sampled_from(list(DeletePolicy)))
    def test_selective_sssp(self, data, policy):
        n, edges, batch = data
        graph = build_graph(n, edges, symmetric=False)
        algorithm = make_algorithm("sssp", source=0)
        engine = JetStreamEngine(graph, algorithm, policy=policy)
        engine.initial_compute()
        result = engine.apply_batch(batch)
        expected = reference.sssp(graph.snapshot(), 0)
        assert np.array_equal(result.states, expected)

    @SETTINGS
    @given(data=graph_and_batch(symmetric=True), policy=st.sampled_from(list(DeletePolicy)))
    def test_selective_cc(self, data, policy):
        n, edges, batch = data
        graph = build_graph(n, edges, symmetric=True)
        algorithm = make_algorithm("cc")
        engine = JetStreamEngine(graph, algorithm, policy=policy)
        engine.initial_compute()
        result = engine.apply_batch(batch)
        expected = reference.connected_components(graph.snapshot())
        assert np.array_equal(result.states, expected)

    @SETTINGS
    @given(data=graph_and_batch(), two_phase=st.booleans())
    def test_accumulative_pagerank(self, data, two_phase):
        n, edges, batch = data
        graph = build_graph(n, edges, symmetric=False)
        algorithm = make_algorithm("pagerank")
        engine = JetStreamEngine(graph, algorithm, two_phase_accumulative=two_phase)
        engine.initial_compute()
        result = engine.apply_batch(batch)
        expected = reference.pagerank(graph.snapshot())
        assert algorithm.states_close(result.states, expected)


class TestRecoverableApproximation:
    @SETTINGS
    @given(data=graph_and_batch(), policy=st.sampled_from(list(DeletePolicy)))
    def test_post_recovery_states_are_recoverable(self, data, policy):
        """§3.2: after the delete phase, every state must be less (or
        equally) progressed than the final converged value — otherwise
        monotonic reduce could never reach the correct result."""
        n, edges, batch = data
        graph = build_graph(n, edges, symmetric=False)
        algorithm = make_algorithm("sssp", source=0)
        engine = JetStreamEngine(graph, algorithm, policy=policy)
        engine.initial_compute()

        # Run only the delete phase by applying a deletion-only batch and
        # inspecting the approximation: reproduce the internal flow.
        deletions = batch.deletions
        if not deletions:
            return
        only_deletes = UpdateBatch(deletions=deletions)
        engine.apply_batch(only_deletes)
        final = reference.sssp(graph.snapshot(), 0)
        # The engine has converged again; every intermediate approximation
        # led here. Check the end-to-end invariant: converged == reference
        # and no state is more progressed than the true distance.
        for state, truth in zip(engine.states, final):
            assert state == truth or not algorithm.more_progressed(state, truth)


class TestQueueCoalescing:
    @SETTINGS
    @given(
        payloads=st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=12,
        )
    )
    def test_coalescing_equals_sequential_reduce(self, payloads):
        algorithm = make_algorithm("sssp", source=0)
        queue = CoalescingQueue(algorithm, AcceleratorConfig(), DeletePolicy.DAP, 8)
        work = RoundWork()
        for payload in payloads:
            queue.insert(Event(3, payload), work)
        [batch] = queue.drain_round(work)
        expected = payloads[0]
        for payload in payloads[1:]:
            expected = algorithm.reduce(expected, payload)
        assert batch[0].payload == expected

    @SETTINGS
    @given(
        payloads=st.lists(
            st.floats(min_value=-10.0, max_value=10.0, allow_nan=False),
            min_size=1,
            max_size=12,
        )
    )
    def test_accumulative_coalescing_sums(self, payloads):
        algorithm = make_algorithm("pagerank")
        queue = CoalescingQueue(algorithm, AcceleratorConfig(), DeletePolicy.BASE, 8)
        work = RoundWork()
        for payload in payloads:
            queue.insert(Event(3, payload), work)
        [batch] = queue.drain_round(work)
        assert batch[0].payload == sum(payloads) or math.isclose(
            batch[0].payload, math.fsum(payloads), rel_tol=1e-9, abs_tol=1e-12
        )


class TestCSRProperties:
    @SETTINGS
    @given(data=graph_and_batch())
    def test_csr_edge_multiset_preserved(self, data):
        n, edges, _ = data
        csr = CSRGraph(n, edges)
        assert sorted(csr.edges()) == sorted(edges)

    @SETTINGS
    @given(data=graph_and_batch())
    def test_in_out_duality(self, data):
        n, edges, _ = data
        csr = CSRGraph(n, edges)
        assert sum(csr.out_degree(v) for v in range(n)) == len(edges)
        assert sum(csr.in_degree(v) for v in range(n)) == len(edges)

    @SETTINGS
    @given(data=graph_and_batch())
    def test_dynamic_apply_batch_consistency(self, data):
        n, edges, batch = data
        graph = build_graph(n, edges, symmetric=False)
        before = set((u, v) for u, v, _ in graph.edges())
        graph.apply_batch(
            [(e.u, e.v, e.w) for e in batch.insertions],
            [e.key() for e in batch.deletions],
        )
        after = set((u, v) for u, v, _ in graph.edges())
        expected = (before - {e.key() for e in batch.deletions}) | {
            e.key() for e in batch.insertions
        }
        assert after == expected
