"""White-box tests of engine internals: request flags, delete phase,
dependency maintenance, and phase scheduling details."""

import math

import numpy as np
import pytest

from repro.algorithms import make_algorithm
from repro.core.config import AcceleratorConfig
from repro.core.engine import EngineCore, MAX_ROUNDS
from repro.core.events import NO_SOURCE, Event
from repro.core.metrics import PhaseStats, RunMetrics
from repro.core.policies import DeletePolicy, should_reset
from repro.core.streaming import JetStreamEngine
from repro.graph.csr import CSRGraph
from repro.graph.dynamic import DynamicGraph
from repro.streams import Edge, UpdateBatch


def make_core(algorithm_name="sssp", policy=DeletePolicy.DAP, csr=None):
    algorithm = make_algorithm(algorithm_name, source=0)
    core = EngineCore(algorithm, AcceleratorConfig(), policy)
    csr = csr or CSRGraph(4, [(0, 1, 2.0), (1, 2, 3.0), (2, 3, 4.0)])
    core.allocate(csr.num_vertices)
    core.bind_graph(csr)
    return core


class TestRequestFlag:
    def test_request_forces_propagation_without_change(self):
        """A request event must make an unchanged vertex re-send its state
        along all out-edges (§3.4)."""
        core = make_core()
        queue = core.new_queue()
        phase = PhaseStats("test")
        work = phase.new_round()
        # Converge first.
        queue.insert(Event(0, 0.0), work)
        core.run_regular(queue, phase)
        assert core.states[3] == 9.0
        # Reset vertex 2 by hand; a request to vertex 1 must restore it.
        core.states[2] = math.inf
        core.states[3] = math.inf
        queue.insert(Event(1, core.algorithm.identity, 2, NO_SOURCE), work)
        core.run_regular(queue, phase)
        assert core.states[2] == 5.0
        assert core.states[3] == 9.0

    def test_request_to_identity_vertex_is_harmless(self):
        core = make_core()
        queue = core.new_queue()
        phase = PhaseStats("test")
        work = phase.new_round()
        queue.insert(Event(2, core.algorithm.identity, 2, NO_SOURCE), work)
        core.run_regular(queue, phase)
        # Nothing was reachable/known: states untouched.
        assert math.isinf(core.states[2])
        assert math.isinf(core.states[3])


class TestDeletePhase:
    def _converged_core(self, policy):
        core = make_core(policy=policy)
        queue = core.new_queue()
        phase = PhaseStats("init")
        work = phase.new_round()
        queue.insert(Event(0, 0.0), work)
        core.run_regular(queue, phase)
        return core

    @pytest.mark.parametrize("policy", list(DeletePolicy))
    def test_delete_resets_chain(self, policy):
        core = self._converged_core(policy)
        queue = core.new_queue()
        queue.set_delete_coalescing(policy.coalesces_deletes)
        phase = PhaseStats("delete")
        work = phase.new_round()
        payload = 0.0 if policy is DeletePolicy.BASE else 2.0
        queue.insert(Event(1, payload, 1, 0), work)
        impacted = core.run_delete(queue, phase)
        assert impacted == [1, 2, 3]
        assert all(math.isinf(core.states[v]) for v in (1, 2, 3))
        assert phase.vertices_reset == 3

    def test_dap_discards_mismatched_source(self):
        core = self._converged_core(DeletePolicy.DAP)
        queue = core.new_queue()
        queue.set_delete_coalescing(False)
        phase = PhaseStats("delete")
        work = phase.new_round()
        # Vertex 1's dependency is 0; a delete claiming source 3 must drop.
        queue.insert(Event(1, 2.0, 1, 3), work)
        impacted = core.run_delete(queue, phase)
        assert impacted == []
        assert phase.deletes_discarded == 1
        assert core.states[1] == 2.0

    def test_vap_discards_less_progressed(self):
        core = self._converged_core(DeletePolicy.VAP)
        queue = core.new_queue()
        phase = PhaseStats("delete")
        work = phase.new_round()
        # Vertex 1 holds 2.0; a deleted path that contributed 50 is moot.
        queue.insert(Event(1, 50.0, 1, 0), work)
        impacted = core.run_delete(queue, phase)
        assert impacted == []
        assert phase.deletes_discarded == 1

    def test_should_reset_helper(self):
        algorithm = make_algorithm("sssp", source=0)
        event = Event(1, 5.0, 1, 0)
        assert not should_reset(DeletePolicy.BASE, algorithm, math.inf, event)
        assert should_reset(DeletePolicy.BASE, algorithm, 3.0, event)
        assert not should_reset(DeletePolicy.VAP, algorithm, 3.0, event)
        assert should_reset(DeletePolicy.VAP, algorithm, 5.0, event)
        assert should_reset(DeletePolicy.VAP, algorithm, 7.0, event)


class TestDependencyMaintenance:
    def test_dependency_updates_on_better_path(self):
        graph = DynamicGraph.from_edges([(0, 1, 10.0), (0, 2, 1.0)], 3)
        engine = JetStreamEngine(
            graph, make_algorithm("sssp", source=0), policy=DeletePolicy.DAP
        )
        engine.initial_compute()
        assert engine.core.dependency[1] == 0
        engine.apply_batch(UpdateBatch(insertions=[Edge(2, 1, 2.0)]))
        assert engine.core.states[1] == 3.0
        assert engine.core.dependency[1] == 2

    def test_dependency_cleared_on_reset(self):
        graph = DynamicGraph.from_edges([(0, 1, 1.0)], 2)
        engine = JetStreamEngine(
            graph, make_algorithm("sssp", source=0), policy=DeletePolicy.DAP
        )
        engine.initial_compute()
        engine.apply_batch(UpdateBatch(deletions=[Edge(0, 1)]))
        assert engine.core.dependency[1] == NO_SOURCE

    def test_non_dap_policies_skip_dependency(self):
        graph = DynamicGraph.from_edges([(0, 1, 1.0)], 2)
        engine = JetStreamEngine(
            graph, make_algorithm("sssp", source=0), policy=DeletePolicy.VAP
        )
        engine.initial_compute()
        assert engine.core.dependency[1] == NO_SOURCE  # never written


class TestStateManagement:
    def test_allocate_resets_all(self):
        core = make_core()
        core.states[:] = 1.0
        core.allocate(4)
        assert np.all(np.isinf(core.states))

    def test_grow_preserves_prefix(self):
        core = make_core()
        core.states[1] = 42.0
        core.grow(10)
        assert core.states.shape[0] == 10
        assert core.states[1] == 42.0
        assert math.isinf(core.states[9])

    def test_grow_shrink_noop(self):
        core = make_core()
        core.grow(2)
        assert core.states.shape[0] == 4

    def test_set_slice_assignment_validates(self):
        core = make_core()
        with pytest.raises(ValueError):
            core.set_slice_assignment(np.zeros(2, dtype=np.int64))

    def test_reset_states_clears_values_in_place(self):
        core = make_core()
        states_buf = core.states
        core.states[:] = 1.0
        core.dependency[:] = 2
        core.reset_states()
        assert core.states is states_buf, "reset must not reallocate"
        assert np.all(np.isinf(core.states))
        assert np.all(core.dependency == NO_SOURCE)

    def test_reset_states_preserves_slice_assignment(self):
        # The bugfix rider: shrinking to the common graph and rebinding
        # must keep the partition plan, so shard ids stay deterministic
        # across the common/addition phases.
        core = make_core()
        assignment = np.array([0, 1, 0, 1], dtype=np.int64)
        core.set_slice_assignment(assignment)
        core.reset_states()
        assert core._custom_slice_of is not None
        assert np.array_equal(core._custom_slice_of[:4], assignment)
        smaller = CSRGraph(4, [(0, 1, 2.0)])
        core.bind_graph(smaller)
        assert np.array_equal(core._slice_of[:4], assignment)

    def test_reset_states_grows_when_asked(self):
        core = make_core()
        core.reset_states(6)
        assert core.states.shape[0] == 6

    def test_load_states_roundtrip(self):
        core = make_core()
        base = np.array([0.0, 2.0, 5.0, 9.0])
        deps = np.array([NO_SOURCE, 0, 1, 2], dtype=core.dependency.dtype)
        core.load_states(base, deps)
        assert np.array_equal(core.states[:4], base)
        assert np.array_equal(core.dependency[:4], deps)

    def test_load_states_grows_and_seeds_identity_past_prefix(self):
        core = make_core()
        core.grow(6)
        core.states[:] = 1.0
        base = np.array([0.0, 2.0, 5.0, 9.0])
        core.load_states(base)
        assert np.array_equal(core.states[:4], base)
        assert np.all(np.isinf(core.states[4:]))

    def test_source_context_accumulative(self):
        algorithm = make_algorithm("pagerank")
        core = EngineCore(algorithm, AcceleratorConfig(), DeletePolicy.BASE)
        csr = CSRGraph(3, [(0, 1, 2.0), (0, 2, 4.0)])
        core.allocate(3)
        core.bind_graph(csr)
        ctx = core.source_context(0)
        assert ctx.out_degree == 2
        assert ctx.out_weight_sum == 6.0

    def test_source_context_selective_is_null(self):
        core = make_core()
        ctx = core.source_context(0)
        assert ctx.out_degree == 0


class TestPhaseScheduling:
    def test_selective_two_phases(self):
        graph = DynamicGraph.from_edges([(0, 1, 1.0), (1, 2, 1.0)], 3)
        engine = JetStreamEngine(graph, make_algorithm("sssp", source=0))
        engine.initial_compute()
        result = engine.apply_batch(
            UpdateBatch(insertions=[Edge(0, 2, 5.0)], deletions=[Edge(1, 2)])
        )
        names = [p.name for p in result.metrics.phases]
        assert names == ["delete-propagation", "reevaluation"]
        # The delete phase precedes insertions: vertex 2 was reset, then
        # restored by the inserted edge.
        assert result.states[2] == 5.0

    def test_insertion_only_keeps_delete_phase_empty(self):
        graph = DynamicGraph.from_edges([(0, 1, 1.0)], 2)
        engine = JetStreamEngine(graph, make_algorithm("sssp", source=0))
        engine.initial_compute()
        result = engine.apply_batch(UpdateBatch(insertions=[Edge(1, 0, 9.0)]))
        delete_phase = result.metrics.find("delete-propagation")
        assert delete_phase.vertices_reset == 0

    def test_max_rounds_guard_exists(self):
        assert MAX_ROUNDS >= 10_000
