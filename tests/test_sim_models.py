"""Tests for the architectural models: timing, DRAM, power, software cost."""

import pytest

from repro.core.config import AcceleratorConfig, SoftwareConfig
from repro.core.metrics import PhaseStats, RoundWork, RunMetrics, SoftwareWork
from repro.sim.cost_models import SoftwareCostModel
from repro.sim.memory import DRAMModel
from repro.sim.power import PowerAreaModel
from repro.sim.timing import AcceleratorTimingModel


def make_metrics(events=1000, edges=4000, lines=100, pages=10, rounds=4) -> RunMetrics:
    metrics = RunMetrics()
    phase = metrics.phase("reevaluation")
    for _ in range(rounds):
        work = phase.new_round()
        work.events_processed = events // rounds
        work.events_generated = events // rounds
        work.queue_inserts = events // rounds
        work.edges_read = edges // rounds
        work.vertex_reads = events // rounds
        work.vertex_writes = events // (2 * rounds)
        work.vertex_lines = lines // rounds
        work.edge_lines = lines // rounds
        work.dram_pages = pages // rounds
    return metrics


class TestDRAMModel:
    def test_traffic_extraction(self):
        work = RoundWork(vertex_lines=3, edge_lines=2, spill_bytes=128, dram_pages=4)
        traffic = DRAMModel(AcceleratorConfig()).traffic_of(work)
        assert traffic.line_bytes == 5 * 64
        assert traffic.spill_bytes == 128
        assert traffic.total_bytes == 5 * 64 + 128

    def test_service_cycles_scale_with_bytes(self):
        model = DRAMModel(AcceleratorConfig())
        small = model.service_cycles(model.traffic_of(RoundWork(vertex_lines=10)))
        large = model.service_cycles(model.traffic_of(RoundWork(vertex_lines=1000)))
        assert large > small

    def test_fewer_channels_slower(self):
        work = RoundWork(vertex_lines=1000, dram_pages=100)
        fast = DRAMModel(AcceleratorConfig(dram_channels=8))
        slow = DRAMModel(AcceleratorConfig(dram_channels=1))
        assert slow.service_cycles(slow.traffic_of(work)) > fast.service_cycles(
            fast.traffic_of(work)
        )

    def test_utilization(self):
        model = DRAMModel(AcceleratorConfig())
        assert model.utilization(32, 64) == 0.5
        assert model.utilization(0, 0) == 0.0
        assert model.utilization(100, 64) == 1.0  # clamped


class TestTimingModel:
    def test_more_work_more_cycles(self):
        model = AcceleratorTimingModel()
        small = model.run_time(make_metrics(events=100, edges=400))
        large = model.run_time(make_metrics(events=100_000, edges=400_000))
        assert large.total_cycles > small.total_cycles

    def test_more_processors_fewer_cycles(self):
        metrics = make_metrics(events=100_000, edges=50_000, lines=50)
        few = AcceleratorTimingModel(AcceleratorConfig(num_processors=2))
        many = AcceleratorTimingModel(AcceleratorConfig(num_processors=16))
        assert many.run_time(metrics).total_cycles < few.run_time(metrics).total_cycles

    def test_stream_reader_cost_added_once(self):
        model = AcceleratorTimingModel()
        metrics = make_metrics()
        without = model.run_time(metrics, stream_records=0)
        with_records = model.run_time(metrics, stream_records=100_000)
        assert with_records.total_cycles > without.total_cycles

    def test_initial_phase_gets_no_stream_reader(self):
        model = AcceleratorTimingModel()
        metrics = RunMetrics()
        phase = metrics.phase("initial")
        phase.new_round().events_processed = 10
        a = model.run_time(metrics, stream_records=100_000)
        b = model.run_time(metrics, stream_records=0)
        assert a.total_cycles == b.total_cycles

    def test_time_units(self):
        model = AcceleratorTimingModel(AcceleratorConfig(clock_ghz=1.0))
        report = model.run_time(make_metrics())
        assert report.time_ms == pytest.approx(report.total_cycles / 1e6)
        assert report.time_us == pytest.approx(report.total_cycles / 1e3)

    def test_phase_bound_diagnostic(self):
        model = AcceleratorTimingModel()
        report = model.run_time(make_metrics(events=100_000, edges=100, lines=4))
        assert report.phases[0].bound in {"compute", "queue"}

    def test_memory_bound_detected(self):
        model = AcceleratorTimingModel()
        metrics = make_metrics(events=16, edges=16, lines=100_000, pages=50_000)
        report = model.run_time(metrics)
        assert report.phases[0].bound == "memory"

    def test_energy(self):
        model = AcceleratorTimingModel()
        metrics = make_metrics()
        energy = model.energy_mj(metrics, power_w=8.9)
        assert energy == pytest.approx(8.9 * model.run_time(metrics).time_ms)

    def test_summary(self):
        report = AcceleratorTimingModel().run_time(make_metrics())
        summary = report.summary()
        assert "total_cycles" in summary and "time_ms" in summary

    def test_summary_keeps_duplicate_phase_names(self):
        """Regression: repeated phase names (multi-batch streaming runs)
        used to collapse onto one key, dropping all but the last phase."""
        metrics = RunMetrics()
        for _ in range(3):
            phase = metrics.phase("reevaluation")
            phase.new_round().events_processed = 10
        report = AcceleratorTimingModel().run_time(metrics)
        summary = report.summary()
        phase_keys = [k for k in summary if k.startswith("phase_")]
        assert len(phase_keys) == 3
        assert phase_keys == [
            "phase_0_reevaluation",
            "phase_1_reevaluation",
            "phase_2_reevaluation",
        ]
        assert sum(summary[k] for k in phase_keys) == pytest.approx(
            summary["total_cycles"]
        )

    def test_stream_reader_cycles_are_integral(self):
        """Fractional DRAM-burst occupancy still costs whole cycles."""
        model = AcceleratorTimingModel()
        for records in (1, 3, 7, 100, 12_345):
            cycles = model._stream_reader_cycles(records)
            assert cycles == int(cycles), records
            assert cycles >= 1
        assert model._stream_reader_cycles(0) == 0.0

    def test_setup_cycles_stay_integral_with_stream_reader(self):
        """Regression: a small batch used to add a fractional stream-reader
        cost (e.g. 0.09 cycles), leaking sub-cycle precision into setup."""
        model = AcceleratorTimingModel()
        report = model.run_time(make_metrics(), stream_records=3)
        for phase in report.phases:
            assert phase.setup_cycles == int(phase.setup_cycles), phase.name


class TestPowerAreaModel:
    def test_table4_structure(self):
        rows = PowerAreaModel().table4()
        names = [r["component"] for r in rows]
        assert names == ["Queue", "Scratchpad", "Network", "Proc. Logic", "Total"]

    def test_paper_magnitudes(self):
        """JetStream column should land near the paper's Table 4 values."""
        rows = {r["component"]: r for r in PowerAreaModel().table4()}
        assert rows["Queue"]["total_mw"] == pytest.approx(8815, rel=0.02)
        assert rows["Network"]["total_mw"] == pytest.approx(97, rel=0.05)
        assert rows["Total"]["total_mw"] == pytest.approx(8926, rel=0.02)
        assert rows["Total"]["area_mm2"] == pytest.approx(199, rel=0.02)

    def test_paper_delta_signs(self):
        rows = {r["component"]: r for r in PowerAreaModel().table4()}
        assert rows["Queue"]["dynamic_delta"] < 0  # paper: -6%
        assert rows["Network"]["static_delta"] > 0.5  # paper: +78%
        assert rows["Proc. Logic"]["area_delta"] > 0.4  # paper: +51%
        assert abs(rows["Total"]["total_delta"]) < 0.02  # paper: +1%
        assert 0.0 < rows["Total"]["area_delta"] < 0.05  # paper: +3%

    def test_structural_scaling(self):
        """A larger queue should cost more power and area."""
        small = PowerAreaModel(AcceleratorConfig(queue_bytes=32 * 1024 * 1024))
        large = PowerAreaModel(AcceleratorConfig(queue_bytes=128 * 1024 * 1024))
        assert large.total_power_mw() > small.total_power_mw()
        assert large.total_area_mm2() > small.total_area_mm2()

    def test_jetstream_overhead_small(self):
        model = PowerAreaModel()
        assert model.total_power_mw(True) < 1.05 * model.total_power_mw(False)
        assert model.total_area_mm2(True) < 1.05 * model.total_area_mm2(False)


class TestSoftwareCostModel:
    def test_terms_accounted(self):
        work = SoftwareWork(
            iterations=3,
            edges_traversed=1000,
            vertex_reads_random=500,
            vertex_reads_sequential=2000,
            vertex_writes=100,
            atomics=400,
            bookkeeping_bytes=4096,
        )
        report = SoftwareCostModel().time_report(work)
        assert set(report.terms) == {
            "random_reads",
            "sequential_reads",
            "vertex_writes",
            "edges",
            "atomics",
            "bookkeeping",
        }
        assert report.total_ms > 0

    def test_fixed_overhead_floor(self):
        """Even an empty batch costs the per-batch overhead (Fig. 13)."""
        config = SoftwareConfig()
        time_ms = SoftwareCostModel(config).time_ms(SoftwareWork())
        assert time_ms >= config.per_batch_overhead_us / 1000.0

    def test_barriers_serialize(self):
        a = SoftwareCostModel().time_ms(SoftwareWork(iterations=1))
        b = SoftwareCostModel().time_ms(SoftwareWork(iterations=100))
        assert b > a

    def test_random_reads_dominate_sequential(self):
        model = SoftwareCostModel()
        random = model.time_ms(SoftwareWork(vertex_reads_random=100_000))
        sequential = model.time_ms(SoftwareWork(vertex_reads_sequential=100_000))
        assert random > sequential

    def test_effective_cores(self):
        config = SoftwareConfig(num_cores=36, parallel_efficiency=0.5)
        assert config.effective_cores() == 18.0

    def test_overrides(self):
        config = SoftwareConfig().with_overrides(num_cores=4)
        assert config.num_cores == 4


class TestMetricsContainers:
    def test_roundwork_merge(self):
        a = RoundWork(events_processed=2, edges_read=3, spill_bytes=10)
        b = RoundWork(events_processed=5, edges_read=7, spill_bytes=1)
        a.merge(b)
        assert a.events_processed == 7
        assert a.edges_read == 10
        assert a.spill_bytes == 11

    def test_phase_totals(self):
        phase = PhaseStats("x")
        phase.new_round().events_processed = 4
        phase.new_round().events_processed = 6
        assert phase.events_processed == 10
        assert phase.num_rounds == 2

    def test_run_metrics_find(self):
        metrics = RunMetrics()
        metrics.phase("a")
        metrics.phase("b")
        assert metrics.find("b") is not None
        assert metrics.find("zzz") is None

    def test_bytes_accounting(self):
        phase = PhaseStats("x")
        work = phase.new_round()
        work.vertex_reads = 8
        work.vertex_lines = 2
        assert phase.bytes_used() == 64
        assert phase.bytes_transferred() == 128

    def test_software_work_merge(self):
        a = SoftwareWork(iterations=1, atomics=5)
        a.merge(SoftwareWork(iterations=2, atomics=7))
        assert a.iterations == 3
        assert a.atomics == 12
