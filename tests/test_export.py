"""Tests for the CSV experiment-series exporter."""

import pytest

from repro.experiments import export
from repro.experiments.fig9 import AccessRatio
from repro.experiments.fig12 import OptimizationPoint


class TestRecordToDict:
    def test_dataclass(self):
        record = AccessRatio("sssp", "WK", 0.1, 0.2)
        flat = export.record_to_dict(record)
        assert flat == {
            "algorithm": "sssp",
            "graph": "WK",
            "vertex_ratio": 0.1,
            "edge_ratio": 0.2,
        }

    def test_nested_dict_flattened(self):
        record = OptimizationPoint("sssp", "LJ", {"base": 1.0, "dap": 5.0})
        flat = export.record_to_dict(record)
        assert flat["speedups_base"] == 1.0
        assert flat["speedups_dap"] == 5.0

    def test_plain_dict(self):
        assert export.record_to_dict({"a": 1}) == {"a": 1}

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            export.record_to_dict(42)


class TestWriteCsv:
    def test_round_trip(self, tmp_path):
        records = [AccessRatio("sssp", "WK", 0.1, 0.2), AccessRatio("bfs", "LJ", 0.3, 0.4)]
        path = tmp_path / "out.csv"
        assert export.write_csv(records, path) == 2
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "algorithm,graph,vertex_ratio,edge_ratio"
        assert lines[1] == "sssp,WK,0.1,0.2"

    def test_empty(self, tmp_path):
        path = tmp_path / "empty.csv"
        assert export.write_csv([], path) == 0
        assert path.read_text() == ""

    def test_quoting(self, tmp_path):
        path = tmp_path / "q.csv"
        export.write_csv([{"a": "x,y", "b": 'say "hi"'}], path)
        line = path.read_text().splitlines()[1]
        assert line == '"x,y","say ""hi"""'

    def test_union_header(self, tmp_path):
        path = tmp_path / "u.csv"
        export.write_csv([{"a": 1}, {"b": 2}], path)
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,"
        assert lines[2] == ",2"


class TestExportAll:
    def test_exports_lists_and_skips_rest(self, tmp_path):
        results = {
            "fig9": ([AccessRatio("sssp", "WK", 0.1, 0.2)], "rendering"),
            "table1": ([], "rendering"),  # empty -> skipped
            "weird": ([1, 2, 3], "rendering"),  # unexportable -> skipped
        }
        written = export.export_all(results, tmp_path)
        assert written == ["fig9.csv"]
        assert (tmp_path / "fig9.csv").exists()
