"""Express-lane classification goldens: reasons and work counters are pinned.

For each monotonic algorithm, a deterministic 20-update mixed
insert/delete trace is replayed through :class:`ExpressLane` on a seeded
RMAT graph, and every per-update observable the classifier produces is
pinned in ``tests/data/fastpath_goldens.json``:

* the **safe/unsafe verdict** and the **reason tag** (the exact rule that
  fired — a refactor of ``classify_monotonic_update`` cannot silently
  reclassify an update or rename a rule);
* the **work counters** (``edges_scanned``, ``state_reads``) — the
  O(degree) claim in numbers; a scan-cost regression shows up as a
  counter diff, not a flaky timing assertion;
* the single ``new_state`` write safe improving inserts perform.

The unclassified fallback (``unclassified-algorithm`` for accumulative
algorithms like PageRank) is pinned too, via classify-only probes.

Regenerate (only on purpose, from a known-good tree):

    PYTHONPATH=src python tests/test_fastpath_golden.py --update
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple

import numpy as np
import pytest

from repro.algorithms import make_algorithm
from repro.core.fastpath import ExpressLane
from repro.core.policies import DeletePolicy
from repro.core.streaming import JetStreamEngine
from repro.graph import generators
from repro.graph.dynamic import DynamicGraph
from repro.streams import StreamGenerator

GOLDEN_PATH = Path(__file__).parent / "data" / "fastpath_goldens.json"

TRACE_ALGORITHMS = ["sssp", "sswp", "bfs", "cc"]
TRACE_LEN = 20
NUM_VERTICES = 48
NUM_EDGES = 150
GRAPH_SEED = 5
DELETE_PROB = 0.35


def _build_graph(algorithm) -> DynamicGraph:
    edges = generators.rmat(NUM_VERTICES, NUM_EDGES, seed=GRAPH_SEED, weighted=True)
    if algorithm.needs_symmetric:
        graph = DynamicGraph(NUM_VERTICES, symmetric=True)
        seen = set()
        for u, v, w in edges:
            key = (min(u, v), max(u, v))
            if key in seen:
                continue
            seen.add(key)
            graph.add_edge(u, v, w, _count_version=False)
        return graph
    return DynamicGraph.from_edges(edges, NUM_VERTICES)


def _trace_updates(name: str) -> List[Tuple[int, int, float, str]]:
    """The algorithm's pinned 20-update trace, captured off a scratch graph."""
    algorithm = make_algorithm(name, source=0)
    graph = _build_graph(algorithm)
    generator = StreamGenerator(graph, seed=GRAPH_SEED + 100)
    rng = np.random.default_rng(GRAPH_SEED + 200)
    updates = []
    for _ in range(TRACE_LEN):
        ratio = 0.0 if rng.random() < DELETE_PROB else 1.0
        batch = generator.next_batch(1, insertion_ratio=ratio)
        graph.apply_batch(
            [(e.u, e.v, e.w) for e in batch.insertions],
            [e.key() for e in batch.deletions],
        )
        if batch.insertions:
            e = batch.insertions[0]
            updates.append((e.u, e.v, e.w, "insert"))
        else:
            e = batch.deletions[0]
            updates.append((e.u, e.v, e.w, "delete"))
    return updates


def run_trace(name: str) -> dict:
    """Replay the trace through the lane; returns a serializable record."""
    algorithm = make_algorithm(name, source=0)
    graph = _build_graph(algorithm)
    engine = JetStreamEngine(graph, algorithm, policy=DeletePolicy.DAP)
    try:
        engine.initial_compute()
        lane = ExpressLane(engine)
        updates = []
        for u, v, w, op in _trace_updates(name):
            result = lane.apply(u, v, w, op)
            updates.append(
                {
                    "op": op,
                    "u": u,
                    "v": v,
                    "w": w,
                    "safe": result.safe,
                    "reason": result.reason,
                    "edges_scanned": result.edges_scanned,
                    "state_reads": result.state_reads,
                    "new_state": (
                        [result.new_state[0], result.new_state[1]]
                        if result.new_state is not None
                        else None
                    ),
                }
            )
        return {
            "algorithm": name,
            "updates": updates,
            "lane": dict(lane.stats),
        }
    finally:
        engine.close()


def run_unclassified_probes() -> dict:
    """Classify-only probes against an accumulative algorithm (PageRank)."""
    algorithm = make_algorithm("pagerank", source=0)
    graph = _build_graph(algorithm)
    engine = JetStreamEngine(graph, algorithm, policy=DeletePolicy.BASE)
    try:
        engine.initial_compute()
        lane = ExpressLane(engine)
        probes = []
        for u, v, w, op in [(0, 47, 3.0, "insert"), (1, 46, 2.0, "insert")]:
            verdict = lane.classify(u, v, w, op)
            probes.append(
                {
                    "op": op,
                    "u": u,
                    "v": v,
                    "safe": verdict.safe,
                    "reason": verdict.reason,
                    "edges_scanned": verdict.edges_scanned,
                    "state_reads": verdict.state_reads,
                }
            )
        return {"algorithm": "pagerank", "probes": probes}
    finally:
        engine.close()


# ----------------------------------------------------------------------
# Tests
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def goldens() -> Dict[str, dict]:
    if not GOLDEN_PATH.exists():
        pytest.skip(f"golden file missing: {GOLDEN_PATH}")
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("name", TRACE_ALGORITHMS)
def test_trace_matches_golden(goldens, name):
    """Verdicts, reason tags, and work counters reproduce exactly."""
    record = run_trace(name)
    expected = goldens["traces"][name]
    assert len(record["updates"]) == len(expected["updates"]) == TRACE_LEN
    for i, (actual, pinned) in enumerate(
        zip(record["updates"], expected["updates"])
    ):
        assert actual == pinned, (
            f"{name} update {i} drifted:\n  actual {actual}\n  pinned {pinned}"
        )
    assert record["lane"] == expected["lane"], f"{name}: lane stats drifted"


@pytest.mark.parametrize("name", TRACE_ALGORITHMS)
def test_trace_is_mixed_and_diverse(goldens, name):
    """The pinned trace earns its keep: mixed ops, several distinct rules."""
    updates = goldens["traces"][name]["updates"]
    ops = {u["op"] for u in updates}
    assert ops == {"insert", "delete"}, f"{name}: trace is not mixed"
    reasons = {u["reason"] for u in updates}
    assert len(reasons) >= 3, (
        f"{name}: only {sorted(reasons)} rules exercised; the golden "
        "no longer covers classification meaningfully"
    )


def test_unclassified_fallback_matches_golden(goldens):
    record = run_unclassified_probes()
    assert record == goldens["unclassified"]
    for probe in record["probes"]:
        assert probe["safe"] is False
        assert probe["reason"] == "unclassified-algorithm"


# ----------------------------------------------------------------------
# Regeneration entry point
# ----------------------------------------------------------------------
def _regenerate() -> None:
    traces = {}
    for name in TRACE_ALGORITHMS:
        record = run_trace(name)
        traces[name] = record
        reasons = sorted({u["reason"] for u in record["updates"]})
        safe = sum(1 for u in record["updates"] if u["safe"])
        print(f"captured {name}: {safe}/{TRACE_LEN} safe, rules {reasons}")
    payload = {"traces": traces, "unclassified": run_unclassified_probes()}
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    import sys

    if "--update" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
