"""Unit tests for update batches and the stream generator."""

import pytest

from repro.streams import Edge, StreamGenerator, UpdateBatch

from conftest import random_digraph, random_symmetric_graph


class TestUpdateBatch:
    def test_size_and_ratio(self):
        batch = UpdateBatch(
            insertions=[Edge(0, 1), Edge(1, 2), Edge(2, 3)],
            deletions=[Edge(3, 4)],
        )
        assert batch.size == 4
        assert batch.insertion_ratio == 0.75

    def test_empty_batch(self):
        batch = UpdateBatch()
        assert batch.size == 0
        assert batch.insertion_ratio == 0.0

    def test_duplicate_insertion_rejected(self):
        batch = UpdateBatch(insertions=[Edge(0, 1, 1.0), Edge(0, 1, 2.0)])
        with pytest.raises(ValueError):
            batch.validate()

    def test_duplicate_deletion_rejected(self):
        batch = UpdateBatch(deletions=[Edge(0, 1), Edge(0, 1)])
        with pytest.raises(ValueError):
            batch.validate()

    def test_edge_key_ignores_weight(self):
        assert Edge(1, 2, 5.0).key() == Edge(1, 2, 9.0).key()


class TestStreamGenerator:
    def test_batch_size_and_composition(self):
        graph = random_digraph(seed=1)
        generator = StreamGenerator(graph, seed=2, insertion_ratio=0.7)
        batch = generator.next_batch(20)
        assert batch.size == 20
        assert len(batch.insertions) == 14
        assert len(batch.deletions) == 6

    def test_composition_override(self):
        graph = random_digraph(seed=1)
        generator = StreamGenerator(graph, seed=2)
        batch = generator.next_batch(10, insertion_ratio=0.0)
        assert len(batch.insertions) == 0
        assert len(batch.deletions) == 10

    def test_deletions_exist_in_graph(self):
        graph = random_digraph(seed=3)
        batch = StreamGenerator(graph, seed=4).next_batch(16)
        assert all(graph.has_edge(e.u, e.v) for e in batch.deletions)

    def test_insertions_are_fresh(self):
        graph = random_digraph(seed=5)
        batch = StreamGenerator(graph, seed=6).next_batch(16)
        assert all(not graph.has_edge(e.u, e.v) for e in batch.insertions)

    def test_no_insert_of_just_deleted_edge(self):
        graph = random_digraph(seed=7)
        batch = StreamGenerator(graph, seed=8).next_batch(30, insertion_ratio=0.5)
        deleted = {e.key() for e in batch.deletions}
        assert all(e.key() not in deleted for e in batch.insertions)

    def test_deterministic(self):
        a = StreamGenerator(random_digraph(seed=9), seed=10).next_batch(12)
        b = StreamGenerator(random_digraph(seed=9), seed=10).next_batch(12)
        assert [e.key() for e in a.insertions] == [e.key() for e in b.insertions]
        assert [e.key() for e in a.deletions] == [e.key() for e in b.deletions]

    def test_stream_applies_batches(self):
        graph = random_digraph(seed=11)
        edges_before = graph.num_edges
        generator = StreamGenerator(graph, seed=12, insertion_ratio=1.0)
        batches = list(generator.stream(8, 3))
        assert len(batches) == 3
        assert graph.num_edges == edges_before + 24

    def test_successive_batches_consistent(self):
        """After applying batch k, batch k+1 must still be valid."""
        graph = random_digraph(seed=13)
        generator = StreamGenerator(graph, seed=14, insertion_ratio=0.5)
        for batch in generator.stream(10, 5):
            batch.validate()

    def test_symmetric_graph_sampling(self):
        graph = random_symmetric_graph(seed=15)
        generator = StreamGenerator(graph, seed=16, insertion_ratio=0.5)
        batch = generator.next_batch(10)
        # Deletions reference one direction of an existing symmetric edge.
        assert all(graph.has_edge(e.u, e.v) for e in batch.deletions)
        # Applying via the graph mirrors automatically.
        graph.apply_batch(
            [(e.u, e.v, e.w) for e in batch.insertions],
            [e.key() for e in batch.deletions],
        )
        for e in batch.insertions:
            assert graph.has_edge(e.v, e.u)

    def test_bad_ratio_rejected(self):
        with pytest.raises(ValueError):
            StreamGenerator(random_digraph(), insertion_ratio=1.5)

    def test_too_many_deletions_rejected(self):
        graph = random_digraph(n=10, m=5, seed=17)
        generator = StreamGenerator(graph, seed=18)
        with pytest.raises(ValueError):
            generator.next_batch(100, insertion_ratio=0.0)

    def test_unweighted_insertions(self):
        graph = random_digraph(seed=19)
        generator = StreamGenerator(graph, seed=20, weighted=False)
        batch = generator.next_batch(10, insertion_ratio=1.0)
        assert all(e.w == 1.0 for e in batch.insertions)
